#include "core/deepdirect.h"

#include <algorithm>
#include <cmath>

#include "ml/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/sgd_driver.h"
#include "util/alias_table.h"
#include "util/random.h"

namespace deepdirect::core {

using graph::MixedSocialNetwork;
using graph::NodeId;

namespace {

// Per-undirected-arc pattern data, precomputed (Algorithm 1, lines 6–9).
struct PatternInfo {
  double degree_pseudo_label = 0.0;  ///< y^d (pattern-consistent form)
  bool degree_active = false;        ///< y^d > T
  /// Arc-index pairs (index(u,w), index(v,w)) for w ∈ t(u, v).
  std::vector<std::pair<uint32_t, uint32_t>> triad_pairs;
};

// Per-worker E-Step sampler tallies, accumulated with plain increments in
// the step body (each worker owns one padded slot) and flushed into obs
// counters once after the run — the hot loop never touches shared metrics.
struct alignas(64) EStepTally {
  uint64_t resamples = 0;       ///< leaf-destination pair redraws
  uint64_t neg_collisions = 0;  ///< negative draw hit the positive context
  uint64_t labeled = 0;         ///< steps whose source arc is labeled
  uint64_t degree_pattern = 0;  ///< steps with the degree pattern active
  uint64_t triad_pattern = 0;   ///< steps with a non-empty triad set
};

void FlushTallies(const std::vector<EStepTally>& tallies) {
  if (!obs::Enabled()) return;
  EStepTally total;
  for (const EStepTally& t : tallies) {
    total.resamples += t.resamples;
    total.neg_collisions += t.neg_collisions;
    total.labeled += t.labeled;
    total.degree_pattern += t.degree_pattern;
    total.triad_pattern += t.triad_pattern;
  }
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("deepdirect.estep.sampler.resamples")
      ->Add(total.resamples);
  registry.GetCounter("deepdirect.estep.sampler.negative_collisions")
      ->Add(total.neg_collisions);
  registry.GetCounter("deepdirect.estep.sampler.labeled_steps")
      ->Add(total.labeled);
  registry.GetCounter("deepdirect.estep.sampler.degree_pattern_steps")
      ->Add(total.degree_pattern);
  registry.GetCounter("deepdirect.estep.sampler.triad_pattern_steps")
      ->Add(total.triad_pattern);
}

}  // namespace

std::unique_ptr<DeepDirectModel> DeepDirectModel::Train(
    const MixedSocialNetwork& g, const DeepDirectConfig& config) {
  DD_CHECK_GT(g.num_directed_ties(), 0u);
  DD_CHECK_GT(config.dimensions, 0u);
  DD_CHECK_GE(config.epochs, 0.0);

  obs::PhaseScope train_phase("deepdirect.train");
  // Sub-phase scope: emplace() closes the previous span and opens the next.
  std::optional<obs::PhaseScope> phase;
  phase.emplace("deepdirect.preprocess");
  TieIndex index(g);
  const size_t num_arcs = index.num_arcs();
  const size_t l = config.dimensions;
  std::unique_ptr<DeepDirectModel> model(
      new DeepDirectModel(std::move(index), l));
  const TieIndex& idx = model->index_;

  util::Rng rng(config.seed);

  // --- Preprocessing -------------------------------------------------------
  // Pattern data for undirected arcs (lines 6–9 of Algorithm 1).
  std::vector<uint32_t> pattern_slot(num_arcs, UINT32_MAX);
  std::vector<PatternInfo> patterns;
  for (size_t e = 0; e < num_arcs; ++e) {
    if (idx.Class(e) != ArcClass::kUndirected) continue;
    const auto [u, v] = idx.ArcAt(e);
    PatternInfo info;
    // Pattern-consistent Eq. 14 (see header note): ties point toward the
    // higher-degree endpoint, so y^d_{uv} grows with deg(v).
    const double deg_u = g.Deg(u);
    const double deg_v = g.Deg(v);
    const double denom = deg_u + deg_v;
    info.degree_pseudo_label = denom > 0.0 ? deg_v / denom : 0.5;
    info.degree_active =
        info.degree_pseudo_label > config.degree_pattern_threshold;

    // t(u, v): up to γ random common neighbors.
    std::vector<NodeId> common = g.CommonNeighbors(u, v);
    if (common.size() > config.max_common_neighbors) {
      rng.Shuffle(common);
      common.resize(config.max_common_neighbors);
    }
    info.triad_pairs.reserve(common.size());
    for (NodeId w : common) {
      info.triad_pairs.emplace_back(
          static_cast<uint32_t>(idx.IndexOf(u, w)),
          static_cast<uint32_t>(idx.IndexOf(v, w)));
    }
    pattern_slot[e] = static_cast<uint32_t>(patterns.size());
    patterns.push_back(std::move(info));
  }

  // --- E-Step --------------------------------------------------------------
  phase.emplace("deepdirect.estep");
  ml::Matrix& m = model->embeddings_;
  ml::Matrix n(num_arcs, l);  // connection matrix N
  const float init = 0.5f / static_cast<float>(l);
  m.FillUniform(rng, -init, init);
  // N starts at zero (skip-gram output-layer convention).

  std::vector<double> w_prime(l, 0.0);
  double b_prime = 0.0;

  // Sampling distributions over closure arcs.
  std::vector<double> pc_weights(num_arcs);
  std::vector<double> pn_weights(num_arcs);
  for (size_t e = 0; e < num_arcs; ++e) {
    const double deg = idx.TieDegree(e);
    pc_weights[e] = deg;  // P_c ∝ deg_tie
    pn_weights[e] = config.uniform_negative_sampling
                        ? 1.0
                        : std::pow(deg + 1.0, 0.75);  // P_n ∝ deg_tie^{3/4}
  }
  // Degenerate but legal: a network where every destination is a leaf has
  // no connected tie pairs; fall back to uniform source sampling.
  double pc_total = 0.0;
  for (double w : pc_weights) pc_total += w;
  if (pc_total <= 0.0) std::fill(pc_weights.begin(), pc_weights.end(), 1.0);
  const util::AliasTable source_table(pc_weights);
  const util::AliasTable noise_table(pn_weights);

  const uint64_t iterations = static_cast<uint64_t>(
      config.epochs * static_cast<double>(idx.NumConnectedTiePairs()));

  // Loss tracking costs a LogSigmoid per sample; pay it when the caller
  // listens (progress callback) or telemetry is being recorded. The loss
  // value never feeds back into updates, so tracking cannot perturb them.
  const bool track_loss =
      static_cast<bool>(config.progress) || obs::Enabled();

  train::SgdOptions options;
  options.steps = iterations;
  options.num_threads = config.num_threads;
  options.lr = config.Schedule();
  options.shard_seed = config.seed;
  options.progress = config.progress;
  options.report_every = config.report_every;
  options.metrics_prefix = "train.deepdirect.estep";
  train::SgdDriver driver(options);

  std::vector<std::vector<double>> grad_scratch(
      driver.num_workers(), std::vector<double>(l, 0.0));
  std::vector<EStepTally> tallies(driver.num_workers());

  driver.Run(rng, [&](auto access, const train::SgdStep& ctx) -> double {
    using A = decltype(access);
    std::vector<double>& grad_m = grad_scratch[ctx.worker];
    EStepTally& tally = tallies[ctx.worker];
    util::Rng& r = ctx.rng;
    const double lr = ctx.lr;
    const double progress = static_cast<double>(ctx.step) /
                            static_cast<double>(iterations);

    // Line 13: sample a connected tie pair (e, e'). A tie with a leaf
    // destination has no pair; resample instead of silently skipping the
    // step (P_c ∝ deg_tie never draws such a tie, so the loop only spins
    // under the uniform fallback above — which requires |C(G)| > 0 to be
    // reached at all).
    size_t e = source_table.Sample(r);
    size_t e_prime = idx.SampleConnectedTie(e, r);
    while (e_prime >= num_arcs) {
      ++tally.resamples;
      e = source_table.Sample(r);
      e_prime = idx.SampleConnectedTie(e, r);
    }

    auto m_e = m.Row(e);
    std::fill(grad_m.begin(), grad_m.end(), 0.0);

    double step_loss = 0.0;

    // --- L_topo: positive pair + λ negatives (Eqs. 23–25).
    {
      auto n_pos = n.Row(e_prime);
      const double score = train::DotRows<A>(m_e, n_pos);
      const double g_pos = ml::Sigmoid(score) - 1.0;
      for (size_t k = 0; k < l; ++k) {
        grad_m[k] += g_pos * static_cast<double>(A::Load(n_pos[k]));
      }
      train::AddScaled<A>(n_pos, -lr * g_pos, m_e);
      if (track_loss) step_loss -= ml::LogSigmoid(score);
    }
    for (size_t neg = 0; neg < config.negative_samples; ++neg) {
      const size_t f = noise_table.Sample(r);
      if (f == e_prime) {
        ++tally.neg_collisions;
        continue;
      }
      auto n_neg = n.Row(f);
      const double score = train::DotRows<A>(m_e, n_neg);
      const double g_neg = ml::Sigmoid(score);
      for (size_t k = 0; k < l; ++k) {
        grad_m[k] += g_neg * static_cast<double>(A::Load(n_neg[k]));
      }
      train::AddScaled<A>(n_neg, -lr * g_neg, m_e);
      if (track_loss) step_loss -= ml::LogSigmoid(-score);
    }

    // --- Classifier losses: ∂L'/∂b' per Eq. 21, ramped in over the warmup
    // window so the topology loss shapes the embedding first.
    const double warmup_scale =
        config.classifier_warmup_fraction <= 0.0
            ? 1.0
            : std::min(1.0, progress / config.classifier_warmup_fraction);
    double g_b = 0.0;
    const ArcClass arc_class = idx.Class(e);
    const bool needs_prediction =
        warmup_scale > 0.0 &&
        (idx.IsLabeled(e) || arc_class == ArcClass::kUndirected);
    if (needs_prediction) {
      double score = A::Load(b_prime);
      for (size_t k = 0; k < l; ++k) {
        score += A::Load(w_prime[k]) * static_cast<double>(A::Load(m_e[k]));
      }
      const double prediction = ml::Sigmoid(score);

      // Ablation hook: dividing by deg_tie(e) cancels the tie-degree
      // weighting that P_c sampling otherwise realizes (Eq. 19). The
      // warmup ramp multiplies in here as well.
      const double degree_scale =
          warmup_scale * (config.weight_by_tie_degree
                              ? 1.0
                              : 1.0 / std::max<double>(1.0, idx.TieDegree(e)));

      if (idx.IsLabeled(e)) {
        ++tally.labeled;
        g_b += config.alpha * degree_scale * (prediction - idx.Label(e));
      } else {
        const PatternInfo& info = patterns[pattern_slot[e]];
        if (info.degree_active) {
          ++tally.degree_pattern;
          g_b += config.beta * degree_scale *
                 (prediction - info.degree_pseudo_label);
        }
        if (!info.triad_pairs.empty()) {
          ++tally.triad_pattern;
          // y^t from current predictions over t(u, v) (Eq. 15).
          double y_t = 0.0;
          for (const auto& [uw, vw] : info.triad_pairs) {
            double score_uw = A::Load(b_prime);
            double score_vw = score_uw;
            const auto m_uw = m.Row(uw);
            const auto m_vw = m.Row(vw);
            for (size_t k = 0; k < l; ++k) {
              const double wk = A::Load(w_prime[k]);
              score_uw += wk * static_cast<double>(A::Load(m_uw[k]));
              score_vw += wk * static_cast<double>(A::Load(m_vw[k]));
            }
            const double y_uw = ml::Sigmoid(score_uw);
            const double y_vw = ml::Sigmoid(score_vw);
            y_t += y_uw / std::max(y_uw + y_vw, 1e-12);
          }
          y_t /= static_cast<double>(info.triad_pairs.size());
          g_b += config.beta * degree_scale * (prediction - y_t);
        }
      }

      if (g_b != 0.0) {
        // Eq. 23 (classifier part) and Eq. 22, plus L2 decay on w'.
        for (size_t k = 0; k < l; ++k) {
          const double wk = A::Load(w_prime[k]);
          grad_m[k] += g_b * wk;
          A::Store(w_prime[k],
                   wk - lr * (g_b * static_cast<double>(A::Load(m_e[k])) +
                              config.classifier_l2 * wk));
        }
        A::Store(b_prime, A::Load(b_prime) - lr * g_b);
      }
    }

    // Line 15: apply the accumulated embedding gradient (with row decay).
    for (size_t k = 0; k < l; ++k) {
      const float mk = A::Load(m_e[k]);
      A::Store(m_e[k],
               mk - static_cast<float>(
                        lr * (grad_m[k] +
                              config.embedding_l2 *
                                  static_cast<double>(mk))));
    }

    return step_loss;
  });

  FlushTallies(tallies);
  model->e_step_weights_ = w_prime;
  model->e_step_bias_ = b_prime;

  // --- D-Step (Sec. 4.5.2): warm-started L2 logistic regression on the
  // embedding rows of labeled arcs.
  phase.emplace("deepdirect.dstep");
  ml::Dataset data(l);
  std::vector<double> features(l);
  for (size_t e = 0; e < num_arcs; ++e) {
    if (!idx.IsLabeled(e)) continue;
    const auto row = m.Row(e);
    for (size_t k = 0; k < l; ++k) features[k] = row[k];
    data.Add(features, idx.Label(e));
  }
  model->d_step_ = ml::LogisticRegression(w_prime, b_prime);
  model->d_step_.Train(data, config.d_step);

  if (config.d_step_head == DStepHead::kMlp) {
    // Nonlinear head (Sec. 8 future work) on the same labeled rows.
    model->mlp_head_.emplace(l, config.d_step_mlp.hidden_units,
                             config.d_step_mlp.seed);
    model->mlp_head_->Train(data, config.d_step_mlp);
  }

  return model;
}

double DeepDirectModel::Directionality(NodeId u, NodeId v) const {
  const auto row = embeddings_.Row(index_.IndexOf(u, v));
  std::vector<double> features(row.size());
  for (size_t k = 0; k < row.size(); ++k) features[k] = row[k];
  if (mlp_head_.has_value()) return mlp_head_->Predict(features);
  return d_step_.Predict(features);
}

}  // namespace deepdirect::core
