#include "graph/statistics.h"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.h"

namespace deepdirect::graph {

double Reciprocity(const MixedSocialNetwork& g) {
  const double directed_arcs =
      static_cast<double>(g.num_directed_ties()) +
      2.0 * static_cast<double>(g.num_bidirectional_ties());
  if (directed_arcs == 0.0) return 0.0;
  return 2.0 * static_cast<double>(g.num_bidirectional_ties()) /
         directed_arcs;
}

double DegreeAssortativity(const MixedSocialNetwork& g) {
  // Pearson correlation over tie endpoints, each unordered tie counted
  // once with both orientations (standard symmetric treatment).
  double sum_x = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  uint64_t count = 0;
  for (ArcId id = 0; id < g.num_arcs(); ++id) {
    const Arc& arc = g.arc(id);
    if (arc.type != TieType::kDirected && arc.src > arc.dst) continue;
    const double du = g.UndirectedDegree(arc.src);
    const double dv = g.UndirectedDegree(arc.dst);
    // Symmetric: add both (du, dv) and (dv, du).
    sum_x += du + dv;
    sum_xx += du * du + dv * dv;
    sum_xy += 2.0 * du * dv;
    count += 2;
  }
  if (count == 0) return 0.0;
  const double n = static_cast<double>(count);
  const double mean = sum_x / n;
  const double var = sum_xx / n - mean * mean;
  if (var <= 1e-12) return 0.0;
  const double cov = sum_xy / n - mean * mean;
  return cov / var;
}

DegreeSummary SummarizeDegrees(const MixedSocialNetwork& g) {
  DegreeSummary summary;
  const size_t n = g.num_nodes();
  if (n == 0) return summary;
  std::vector<double> degrees(n);
  double total = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    degrees[u] = g.UndirectedDegree(u);
    total += degrees[u];
  }
  std::sort(degrees.begin(), degrees.end());
  summary.mean = total / static_cast<double>(n);
  summary.max = degrees.back();
  summary.p90 = degrees[static_cast<size_t>(0.9 * (n - 1))];
  const size_t top = std::max<size_t>(1, n / 100);
  double top_total = 0.0;
  for (size_t i = 0; i < top; ++i) top_total += degrees[n - 1 - i];
  summary.top1_percent_share = total > 0.0 ? top_total / total : 0.0;
  return summary;
}

double AveragePathLengthSampled(const MixedSocialNetwork& g,
                                size_t num_sources, util::Rng& rng) {
  const size_t n = g.num_nodes();
  if (n < 2) return 0.0;
  const size_t k = std::min(num_sources, n);
  double total = 0.0;
  uint64_t pairs = 0;
  for (size_t source_index : rng.SampleWithoutReplacement(n, k)) {
    const auto dist = BfsDistances(g, static_cast<NodeId>(source_index));
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] > 0) {
        total += dist[v];
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace deepdirect::graph
