#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace deepdirect::graph {

util::Status SaveEdgeList(const MixedSocialNetwork& g,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return util::Status::IOError("cannot open for writing: " + path);
  }
  WriteEdgeList(g, out);
  out.flush();
  if (!out.good()) return util::Status::IOError("write failed: " + path);
  return util::Status::OK();
}

void WriteEdgeList(const MixedSocialNetwork& g, std::ostream& out) {
  out << "# nodes " << g.num_nodes() << "\n";
  for (ArcId id = 0; id < g.num_arcs(); ++id) {
    const Arc& a = g.arc(id);
    // Emit each tie once: directed arcs are unique; twins once from the
    // smaller endpoint.
    if (a.type != TieType::kDirected && a.src > a.dst) continue;
    char type_char = 'd';
    if (a.type == TieType::kBidirectional) type_char = 'b';
    if (a.type == TieType::kUndirected) type_char = 'u';
    out << a.src << ' ' << a.dst << ' ' << type_char << "\n";
  }
}

util::Result<MixedSocialNetwork> LoadEdgeList(const std::string& path,
                                              size_t num_threads) {
  std::ifstream in(path, std::ios::ate);
  if (!in.good()) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  // The end position is the file size — the reserve hint that keeps the
  // tie buffer from doubling its way up through a multi-GB edge list.
  const auto end_pos = in.tellg();
  const size_t size_hint =
      end_pos > 0 ? static_cast<size_t>(end_pos) : 0;
  in.seekg(0);
  return ReadEdgeList(in, num_threads, size_hint);
}

util::Result<MixedSocialNetwork> ReadEdgeList(std::istream& in,
                                              size_t num_threads,
                                              size_t size_hint_bytes) {
  obs::PhaseScope phase("graph.load");
  struct ParsedTie {
    NodeId u, v;
    TieType type;
  };
  std::vector<ParsedTie> ties;
  // See the header: hint/12 deliberately under-estimates the tie count so
  // over-allocation is impossible and at most one growth remains.
  if (size_hint_bytes > 0) ties.reserve(size_hint_bytes / 12 + 1);
  size_t tie_reallocs = 0;
  size_t declared_nodes = 0;
  bool has_declared = false;
  NodeId max_id = 0;

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Windows-edited files carry a trailing '\r' (getline splits on '\n'
    // only); strip it so tokens and blank-line detection see clean text.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip lines that are empty after trimming, not just byte-empty.
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string keyword;
      if (header >> keyword && keyword == "nodes") {
        if (!(header >> declared_nodes)) {
          return util::Status::InvalidArgument(
              "malformed '# nodes' header at line " +
              std::to_string(line_number));
        }
        has_declared = true;
      }
      continue;
    }
    std::istringstream fields(line);
    long long u_raw = -1, v_raw = -1;
    std::string type_token;
    if (!(fields >> u_raw >> v_raw >> type_token) || u_raw < 0 || v_raw < 0) {
      return util::Status::InvalidArgument("malformed tie at line " +
                                           std::to_string(line_number) +
                                           ": '" + line + "'");
    }
    TieType type;
    if (type_token == "d") {
      type = TieType::kDirected;
    } else if (type_token == "b") {
      type = TieType::kBidirectional;
    } else if (type_token == "u") {
      type = TieType::kUndirected;
    } else {
      return util::Status::InvalidArgument(
          "unknown tie type '" + type_token + "' at line " +
          std::to_string(line_number));
    }
    // Anything after the type field means the line was not what we parsed
    // it as — fail loudly rather than train on misread data.
    std::string extra;
    if (fields >> extra) {
      return util::Status::InvalidArgument(
          "trailing data '" + extra + "' after tie at line " +
          std::to_string(line_number) + ": '" + line + "'");
    }
    const NodeId u = static_cast<NodeId>(u_raw);
    const NodeId v = static_cast<NodeId>(v_raw);
    max_id = std::max({max_id, u, v});
    if (ties.size() == ties.capacity()) ++tie_reallocs;
    ties.push_back({u, v, type});
  }

  const size_t num_nodes =
      has_declared ? declared_nodes : (ties.empty() ? 0 : max_id + 1);
  if (has_declared && !ties.empty() && max_id >= num_nodes) {
    return util::Status::InvalidArgument(
        "tie references node " + std::to_string(max_id) +
        " beyond declared node count " + std::to_string(num_nodes));
  }

  GraphBuilder builder(num_nodes);
  builder.SetNumThreads(num_threads);
  for (const ParsedTie& t : ties) {
    DD_RETURN_NOT_OK(builder.AddTie(t.u, t.v, t.type));
  }
  if (obs::Enabled()) {
    obs::Registry& registry = obs::Registry::Default();
    registry.GetCounter("graph.load.ties")->Add(ties.size());
    registry.GetCounter("graph.load.lines")->Add(line_number);
    registry.GetCounter("graph.load.tie_reallocs")->Add(tie_reallocs);
    registry.GetGauge("graph.load.nodes")
        ->Set(static_cast<double>(num_nodes));
  }
  return std::move(builder).Build();
}

}  // namespace deepdirect::graph
