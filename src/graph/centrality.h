// Node centrality measures used by the hand-crafted feature model (Sec. 3.1):
// closeness centrality (Eq. 3) and betweenness centrality (Eq. 4), both
// computed over the undirected view of the network, exactly as the paper
// prescribes ("the network is regarded as an undirected graph when
// calculating shortest paths").
//
// Exact computation is all-sources BFS / Brandes' algorithm — O(V·E). For
// the network sizes of the experiments a pivot-sampled estimator (Brandes &
// Pich 2007) with k sources gives the same feature ranking at O(k·E); the
// feature extractor uses the sampled variant by default.
//
// Every variant is embarrassingly parallel over sources and takes a
// `num_threads` knob (0 = all hardware threads). Sources are sharded into
// fixed blocks (train/parallel.h) and per-block partial sums are reduced in
// block order, so the result is bit-identical for every thread count; the
// sampled variants draw their pivot set from `rng` up front, which keeps
// the rng stream consumption thread-count-independent too.

#ifndef DEEPDIRECT_GRAPH_CENTRALITY_H_
#define DEEPDIRECT_GRAPH_CENTRALITY_H_

#include <vector>

#include "graph/mixed_graph.h"
#include "util/random.h"

namespace deepdirect::graph {

/// Exact closeness centrality cc(u) = 1 / Σ_v dis(u, v) for every node.
/// Distances are summed within u's connected component (unreachable nodes
/// are skipped); isolated nodes get 0.
std::vector<double> ClosenessCentralityExact(const MixedSocialNetwork& g,
                                             size_t num_threads = 1);

/// Pivot-sampled closeness: runs BFS from `num_pivots` random sources and
/// estimates Σ_v dis(u, v) by (n-1)/k-scaled partial sums.
std::vector<double> ClosenessCentralitySampled(const MixedSocialNetwork& g,
                                               size_t num_pivots,
                                               util::Rng& rng,
                                               size_t num_threads = 1);

/// Exact betweenness centrality via Brandes' algorithm (undirected view,
/// unnormalized, each unordered pair counted twice as in Eq. 4).
std::vector<double> BetweennessCentralityExact(const MixedSocialNetwork& g,
                                               size_t num_threads = 1);

/// Pivot-sampled betweenness (Brandes–Pich): accumulates dependencies from
/// `num_pivots` random sources and scales by n / k.
std::vector<double> BetweennessCentralitySampled(const MixedSocialNetwork& g,
                                                 size_t num_pivots,
                                                 util::Rng& rng,
                                                 size_t num_threads = 1);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_CENTRALITY_H_
