// Network-level descriptive statistics used for dataset validation and the
// Table 2 report: reciprocity, degree assortativity, degree distribution
// summaries, and (sampled) average path length.

#ifndef DEEPDIRECT_GRAPH_STATISTICS_H_
#define DEEPDIRECT_GRAPH_STATISTICS_H_

#include <cstdint>
#include <vector>

#include "graph/mixed_graph.h"
#include "util/random.h"

namespace deepdirect::graph {

/// Fraction of directed relations that are reciprocated. With explicit
/// bidirectional ties this is 2|E_b| / (|E_d| + 2|E_b|); undirected ties
/// are excluded (their direction is unknown).
double Reciprocity(const MixedSocialNetwork& g);

/// Pearson correlation of endpoint undirected degrees over all ties
/// (degree assortativity, Newman 2002). Returns 0 for degenerate inputs.
double DegreeAssortativity(const MixedSocialNetwork& g);

/// Summary of the undirected degree distribution.
struct DegreeSummary {
  double mean = 0.0;
  double max = 0.0;
  /// Degree at the 90th percentile.
  double p90 = 0.0;
  /// Share of total degree held by the top 1% of nodes (hubbiness).
  double top1_percent_share = 0.0;
};
DegreeSummary SummarizeDegrees(const MixedSocialNetwork& g);

/// Average shortest-path length estimated from `num_sources` BFS sources
/// (exact when num_sources >= num_nodes). Unreachable pairs are skipped.
double AveragePathLengthSampled(const MixedSocialNetwork& g,
                                size_t num_sources, util::Rng& rng);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_STATISTICS_H_
