// Edge-list serialization for mixed social networks.
//
// Text format, one tie per line:
//     <u> <v> <type>
// where <type> is one of `d` (directed u->v), `b` (bidirectional), or
// `u` (undirected). Lines starting with `#` and blank (or whitespace-only)
// lines are ignored; CRLF line endings are accepted. Extra tokens after the
// type field are a parse error. A header line `# nodes <n>` may pin the
// node count; otherwise it is max(node id) + 1.

#ifndef DEEPDIRECT_GRAPH_GRAPH_IO_H_
#define DEEPDIRECT_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/mixed_graph.h"
#include "util/status.h"

namespace deepdirect::graph {

/// Writes the network in the edge-list format to `path`.
util::Status SaveEdgeList(const MixedSocialNetwork& g, const std::string& path);

/// Writes the network in the edge-list format to a stream.
void WriteEdgeList(const MixedSocialNetwork& g, std::ostream& out);

/// Loads a network from an edge-list file. `num_threads` drives the
/// builder's parallel index assembly (0 = all cores); the result is
/// bit-identical for every thread count. The parse buffer is reserved from
/// the file size, so multi-gigabyte edge lists load without repeated
/// doubling reallocations of a hundreds-of-MB tie vector.
util::Result<MixedSocialNetwork> LoadEdgeList(const std::string& path,
                                              size_t num_threads = 1);

/// Parses a network from a stream holding the edge-list format.
/// `size_hint_bytes`, when non-zero, is the byte length of the underlying
/// input (LoadEdgeList passes the file size); the tie buffer reserves
/// hint/12 entries — a deliberate *under*-estimate of the tie count (the
/// shortest legal line is 6 bytes, a typical one well over 12), so at most
/// one doubling ever happens and small files never over-allocate. The obs
/// counter "graph.load.tie_reallocs" records the buffer growths that
/// happened anyway.
util::Result<MixedSocialNetwork> ReadEdgeList(std::istream& in,
                                              size_t num_threads = 1,
                                              size_t size_hint_bytes = 0);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_GRAPH_IO_H_
