// SpringRank (De Bacco, Larremore & Moore, Sci. Adv. 2018): infers a
// real-valued hierarchy score per node from directed interactions by
// modeling each directed tie i -> j as a spring that prefers
// s_j = s_i + 1. The scores minimize
//     H(s) = ½ Σ_{i->j} (s_j − s_i − 1)² + ½ α Σ_i s_i²,
// whose stationarity condition is the sparse linear system
//     (L + αI) s = b,   L = D_out + D_in − (A + Aᵀ),
//     b_i = deg_out... (here: b_i = in(i) − out(i) in our orientation).
//
// Status theory (paper Sec. 4.4, [34]) says social ties point from lower
// to higher status — SpringRank recovers exactly that latent status from
// the labeled directed ties, giving a principled status-comparison
// baseline for the TDL problem (core/spring_rank_model.h).

#ifndef DEEPDIRECT_GRAPH_SPRING_RANK_H_
#define DEEPDIRECT_GRAPH_SPRING_RANK_H_

#include <vector>

#include "graph/mixed_graph.h"

namespace deepdirect::graph {

/// SpringRank parameters.
struct SpringRankConfig {
  /// Ridge term keeping the system positive definite (and the scores
  /// anchored near zero).
  double alpha = 0.1;
  size_t max_iterations = 500;
  double tolerance = 1e-8;
};

/// Solves SpringRank over the *directed* ties of `g` (bidirectional ties
/// contribute both directions and thus cancel; undirected ties are
/// ignored). Returns one score per node; higher = higher status.
std::vector<double> SpringRank(const MixedSocialNetwork& g,
                               const SpringRankConfig& config);

/// Conjugate-gradient solve of (L + αI)s = b for the spring Laplacian
/// implied by the directed arc list. Exposed for tests.
/// `arcs` holds (src, dst) pairs; n is the node count.
std::vector<double> SolveSpringSystem(
    size_t n, const std::vector<std::pair<NodeId, NodeId>>& arcs,
    const SpringRankConfig& config);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_SPRING_RANK_H_
