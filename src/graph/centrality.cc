#include "graph/centrality.h"

#include <algorithm>
#include <deque>

#include "graph/algorithms.h"

namespace deepdirect::graph {

namespace {

// One Brandes source iteration: BFS from `s`, then dependency accumulation.
// Adds each node's dependency from this source into `centrality`.
void BrandesAccumulate(const MixedSocialNetwork& g, NodeId s,
                       std::vector<double>& centrality) {
  const size_t n = g.num_nodes();
  std::vector<uint32_t> dist(n, kUnreachable);
  std::vector<double> sigma(n, 0.0);    // shortest-path counts
  std::vector<double> delta(n, 0.0);    // dependencies
  std::vector<NodeId> order;            // nodes in non-decreasing distance
  order.reserve(n);

  std::deque<NodeId> queue;
  dist[s] = 0;
  sigma[s] = 1.0;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (NodeId v : g.UndirectedNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
      if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
    }
  }

  // Accumulate in reverse BFS order; predecessors of v are the neighbors one
  // hop closer to s.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    for (NodeId u : g.UndirectedNeighbors(v)) {
      if (dist[u] + 1 == dist[v]) {
        delta[u] += (sigma[u] / sigma[v]) * (1.0 + delta[v]);
      }
    }
    if (v != s) centrality[v] += delta[v];
  }
}

}  // namespace

std::vector<double> ClosenessCentralityExact(const MixedSocialNetwork& g) {
  const size_t n = g.num_nodes();
  std::vector<double> cc(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const auto dist = BfsDistances(g, u);
    double total = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (v != u && dist[v] != kUnreachable) total += dist[v];
    }
    cc[u] = total > 0.0 ? 1.0 / total : 0.0;
  }
  return cc;
}

std::vector<double> ClosenessCentralitySampled(const MixedSocialNetwork& g,
                                               size_t num_pivots,
                                               util::Rng& rng) {
  const size_t n = g.num_nodes();
  std::vector<double> cc(n, 0.0);
  if (n == 0) return cc;
  const size_t k = std::min(num_pivots, n);
  if (k == n) return ClosenessCentralityExact(g);
  DD_CHECK_GT(k, 0u);

  std::vector<double> dist_sum(n, 0.0);
  std::vector<uint32_t> reach_count(n, 0);
  for (size_t pivot_index : rng.SampleWithoutReplacement(n, k)) {
    const auto dist = BfsDistances(g, static_cast<NodeId>(pivot_index));
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] > 0) {
        dist_sum[v] += dist[v];
        ++reach_count[v];
      }
    }
  }
  // Estimate the full distance sum as (n-1)/count-scaled partial sum, which
  // corrects for pivots outside v's component.
  for (NodeId v = 0; v < n; ++v) {
    if (reach_count[v] == 0 || dist_sum[v] == 0.0) continue;
    const double estimate =
        dist_sum[v] * (static_cast<double>(n - 1) / reach_count[v]);
    cc[v] = 1.0 / estimate;
  }
  return cc;
}

std::vector<double> BetweennessCentralityExact(const MixedSocialNetwork& g) {
  std::vector<double> bc(g.num_nodes(), 0.0);
  for (NodeId s = 0; s < g.num_nodes(); ++s) BrandesAccumulate(g, s, bc);
  return bc;
}

std::vector<double> BetweennessCentralitySampled(const MixedSocialNetwork& g,
                                                 size_t num_pivots,
                                                 util::Rng& rng) {
  const size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (n == 0) return bc;
  const size_t k = std::min(num_pivots, n);
  if (k == n) return BetweennessCentralityExact(g);
  DD_CHECK_GT(k, 0u);

  for (size_t pivot_index : rng.SampleWithoutReplacement(n, k)) {
    BrandesAccumulate(g, static_cast<NodeId>(pivot_index), bc);
  }
  const double scale = static_cast<double>(n) / static_cast<double>(k);
  for (double& v : bc) v *= scale;
  return bc;
}

}  // namespace deepdirect::graph
