#include "graph/centrality.h"

#include <algorithm>

#include "graph/algorithms.h"
#include "train/parallel.h"

namespace deepdirect::graph {

namespace {

// Accumulating stages keep one partial-result vector per block, so the
// block count — not the block size — bounds the scratch memory at
// O(kMaxAccumBlocks · n) and the serial post-reduction at the same cost.
// Kept small: the reduction is the Amdahl term of these sweeps. The
// decomposition depends only on the source count, keeping results
// bit-identical across thread counts.
constexpr size_t kMaxAccumBlocks = 8;

// Per-source block size for the non-accumulating exact closeness sweep
// (each source owns its output slot, so blocks are purely a work unit).
constexpr size_t kSourceBlock = 64;

// Reusable per-block BFS workspace: one allocation per block instead of
// one per source. The frontier is a flat vector walked by index — each
// node enters at most once, so it doubles as the visit order.
struct BfsScratch {
  std::vector<uint32_t> dist;
  std::vector<NodeId> queue;

  explicit BfsScratch(size_t n) : dist(n, kUnreachable) {
    queue.reserve(n);
  }

  // BFS from `s` over the undirected view; leaves distances in `dist`
  // (kUnreachable outside s's component).
  void Run(const MixedSocialNetwork& g, NodeId s) {
    std::fill(dist.begin(), dist.end(), kUnreachable);
    queue.clear();
    dist[s] = 0;
    queue.push_back(s);
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (NodeId v : g.UndirectedNeighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
};

// Reusable per-block Brandes workspace.
struct BrandesScratch {
  std::vector<uint32_t> dist;
  std::vector<double> sigma;  // shortest-path counts
  std::vector<double> delta;  // dependencies
  std::vector<NodeId> order;  // BFS visit order = non-decreasing distance;
                              // doubles as the frontier walked by index

  explicit BrandesScratch(size_t n) : dist(n), sigma(n), delta(n) {
    order.reserve(n);
  }
};

// One Brandes source iteration: BFS from `s`, then dependency accumulation.
// Adds each node's dependency from this source into `centrality`.
void BrandesAccumulate(const MixedSocialNetwork& g, NodeId s,
                       BrandesScratch& ws, std::vector<double>& centrality) {
  std::fill(ws.dist.begin(), ws.dist.end(), kUnreachable);
  std::fill(ws.sigma.begin(), ws.sigma.end(), 0.0);
  std::fill(ws.delta.begin(), ws.delta.end(), 0.0);
  ws.order.clear();

  ws.dist[s] = 0;
  ws.sigma[s] = 1.0;
  ws.order.push_back(s);
  for (size_t head = 0; head < ws.order.size(); ++head) {
    const NodeId u = ws.order[head];
    for (NodeId v : g.UndirectedNeighbors(u)) {
      if (ws.dist[v] == kUnreachable) {
        ws.dist[v] = ws.dist[u] + 1;
        ws.order.push_back(v);
      }
      if (ws.dist[v] == ws.dist[u] + 1) ws.sigma[v] += ws.sigma[u];
    }
  }

  // Accumulate in reverse BFS order; predecessors of v are the neighbors one
  // hop closer to s.
  for (auto it = ws.order.rbegin(); it != ws.order.rend(); ++it) {
    const NodeId v = *it;
    for (NodeId u : g.UndirectedNeighbors(v)) {
      if (ws.dist[u] + 1 == ws.dist[v]) {
        ws.delta[u] += (ws.sigma[u] / ws.sigma[v]) * (1.0 + ws.delta[v]);
      }
    }
    if (v != s) centrality[v] += ws.delta[v];
  }
}

// Brandes over an explicit source list, sharded into fixed blocks with one
// partial centrality vector per block, reduced in block order.
std::vector<double> BrandesOverSources(const MixedSocialNetwork& g,
                                       const std::vector<NodeId>& sources,
                                       size_t num_threads) {
  const size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (sources.empty()) return bc;
  const size_t block = train::BlockSizeFor(sources.size(), kMaxAccumBlocks);
  const size_t blocks = train::NumBlocks(sources.size(), block);
  std::vector<std::vector<double>> partial(blocks);
  train::ParallelBlocks(
      sources.size(), block, num_threads,
      [&](size_t b, size_t begin, size_t end) {
        partial[b].assign(n, 0.0);
        BrandesScratch ws(n);
        for (size_t i = begin; i < end; ++i) {
          BrandesAccumulate(g, sources[i], ws, partial[b]);
        }
      });
  for (const std::vector<double>& part : partial) {
    for (size_t v = 0; v < n; ++v) bc[v] += part[v];
  }
  return bc;
}

}  // namespace

std::vector<double> ClosenessCentralityExact(const MixedSocialNetwork& g,
                                             size_t num_threads) {
  const size_t n = g.num_nodes();
  std::vector<double> cc(n, 0.0);
  train::ParallelBlocks(
      n, kSourceBlock, num_threads, [&](size_t, size_t begin, size_t end) {
        BfsScratch ws(n);
        for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
          ws.Run(g, u);
          double total = 0.0;
          for (NodeId v = 0; v < n; ++v) {
            if (v != u && ws.dist[v] != kUnreachable) total += ws.dist[v];
          }
          cc[u] = total > 0.0 ? 1.0 / total : 0.0;
        }
      });
  return cc;
}

std::vector<double> ClosenessCentralitySampled(const MixedSocialNetwork& g,
                                               size_t num_pivots,
                                               util::Rng& rng,
                                               size_t num_threads) {
  const size_t n = g.num_nodes();
  std::vector<double> cc(n, 0.0);
  if (n == 0) return cc;
  const size_t k = std::min(num_pivots, n);
  if (k == n) return ClosenessCentralityExact(g, num_threads);
  DD_CHECK_GT(k, 0u);

  // Pivots are drawn serially up front: the rng advances identically for
  // every thread count.
  const std::vector<size_t> pivots = rng.SampleWithoutReplacement(n, k);

  const size_t block = train::BlockSizeFor(k, kMaxAccumBlocks);
  const size_t blocks = train::NumBlocks(k, block);
  std::vector<std::vector<double>> partial_sum(blocks);
  std::vector<std::vector<uint32_t>> partial_count(blocks);
  train::ParallelBlocks(
      k, block, num_threads, [&](size_t b, size_t begin, size_t end) {
        partial_sum[b].assign(n, 0.0);
        partial_count[b].assign(n, 0);
        BfsScratch ws(n);
        for (size_t i = begin; i < end; ++i) {
          ws.Run(g, static_cast<NodeId>(pivots[i]));
          for (NodeId v = 0; v < n; ++v) {
            if (ws.dist[v] != kUnreachable && ws.dist[v] > 0) {
              partial_sum[b][v] += ws.dist[v];
              ++partial_count[b][v];
            }
          }
        }
      });
  std::vector<double> dist_sum(n, 0.0);
  std::vector<uint32_t> reach_count(n, 0);
  for (size_t b = 0; b < blocks; ++b) {
    for (NodeId v = 0; v < n; ++v) {
      dist_sum[v] += partial_sum[b][v];
      reach_count[v] += partial_count[b][v];
    }
  }
  // Estimate the full distance sum as (n-1)/count-scaled partial sum, which
  // corrects for pivots outside v's component.
  for (NodeId v = 0; v < n; ++v) {
    if (reach_count[v] == 0 || dist_sum[v] == 0.0) continue;
    const double estimate =
        dist_sum[v] * (static_cast<double>(n - 1) / reach_count[v]);
    cc[v] = 1.0 / estimate;
  }
  return cc;
}

std::vector<double> BetweennessCentralityExact(const MixedSocialNetwork& g,
                                               size_t num_threads) {
  std::vector<NodeId> sources(g.num_nodes());
  for (NodeId s = 0; s < g.num_nodes(); ++s) sources[s] = s;
  return BrandesOverSources(g, sources, num_threads);
}

std::vector<double> BetweennessCentralitySampled(const MixedSocialNetwork& g,
                                                 size_t num_pivots,
                                                 util::Rng& rng,
                                                 size_t num_threads) {
  const size_t n = g.num_nodes();
  if (n == 0) return {};
  const size_t k = std::min(num_pivots, n);
  if (k == n) return BetweennessCentralityExact(g, num_threads);
  DD_CHECK_GT(k, 0u);

  std::vector<NodeId> sources;
  sources.reserve(k);
  for (size_t pivot_index : rng.SampleWithoutReplacement(n, k)) {
    sources.push_back(static_cast<NodeId>(pivot_index));
  }
  std::vector<double> bc = BrandesOverSources(g, sources, num_threads);
  const double scale = static_cast<double>(n) / static_cast<double>(k);
  for (double& v : bc) v *= scale;
  return bc;
}

}  // namespace deepdirect::graph
