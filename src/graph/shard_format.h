// On-disk layout of the out-of-core shard store ("DDSH").
//
// A sharded training run keeps the CSR closure graph and the edge
// embedding/connection matrices on disk behind mmap instead of in heap
// vectors, so graphs whose |E|×l parameter matrices exceed RAM can still
// train under a fixed resident budget. One store is a directory:
//
//   graph.dds        the symmetric-closure CSR and per-arc label classes,
//                    written once and sealed before training starts
//   shard-NNNN.dds   one file per shard, owning the contiguous arc range
//                    [arc_begin, arc_end): the shard's slice of the
//                    embedding matrix M and connection matrix N plus the
//                    pattern arena (pseudo-labels, triad pairs) for its
//                    undirected arcs; mutated in place during the E-step
//                    and sealed afterwards
//
// Each file reuses the DDS1 container discipline from
// core/servable_format.h verbatim — 32-byte header, fixed 40-byte section
// table rows, 64-byte-aligned payloads in table order, zero padding gaps,
// meta CRC over header+table with the field zeroed, per-section payload
// CRC32s — with two deliberate differences:
//
//   * magic "DDSH", and the header's reserved word becomes `flags`.
//     Bit 0 (kFlagSealed) distinguishes a live training file (CRCs not
//     yet meaningful, flags = 0) from a sealed one. Readers accept only
//     sealed files and then validate every byte exactly like the DDS1
//     reader; the fault-injection sweeps in tests/sharded_store_test.cc
//     mirror tests/serve_test.cc.
//   * sections may be empty (a shard with no undirected arcs has
//     zero-length pattern sections); empty sections still occupy a table
//     row at the canonical (aligned) offset with CRC32 of zero bytes.
//
// The store is not crash-atomic: a process killed mid-E-step leaves
// unsealed shard files behind, and Open() rejects them. Checkpoint/resume
// of sharded runs is recorded headroom (ROADMAP), not supported here.
//
// Writer/reader: train/sharded_store.{h,cc}.

#ifndef DEEPDIRECT_GRAPH_SHARD_FORMAT_H_
#define DEEPDIRECT_GRAPH_SHARD_FORMAT_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>

namespace deepdirect::graph::shard {

inline constexpr std::array<char, 4> kMagic{'D', 'D', 'S', 'H'};
inline constexpr uint32_t kVersion = 1;

/// Payload alignment, matching the DDS1 container (and the cache-line
/// assumption the rest of the repo makes).
inline constexpr uint64_t kAlignment = 64;

/// Fixed-width section names (NUL-padded).
inline constexpr size_t kSectionNameSize = 16;

/// Header flag: section CRCs and meta CRC are valid; the file is
/// immutable from here on. Readers reject files without it.
inline constexpr uint32_t kFlagSealed = 1u << 0;

/// File header; layout-identical to the DDS1 header except that the
/// trailing reserved word carries `flags`. `meta_crc` is the CRC32
/// (train::Crc32) over the header bytes with this field zeroed, followed
/// by the full section table — so sealing (which sets kFlagSealed) must
/// set flags before computing the CRC.
struct Header {
  char magic[4];
  uint32_t version;
  uint64_t section_count;
  uint64_t file_size;  ///< must equal the on-disk size exactly
  uint32_t meta_crc;
  uint32_t flags;      ///< kFlag* bits; unknown bits must be zero
};
static_assert(sizeof(Header) == 32);

/// One section-table row, identical to the DDS1 row. `offset` is absolute
/// from the file start and kAlignment-aligned; `crc` is the CRC32 of the
/// payload bytes (zero-length payloads carry the CRC of zero bytes).
struct SectionEntry {
  char name[kSectionNameSize];  ///< NUL-padded, NUL-terminated
  uint64_t offset;
  uint64_t size;
  uint32_t crc;
  uint32_t reserved;  ///< must be zero
};
static_assert(sizeof(SectionEntry) == 40);

/// One triad arc-index pair (index(u,w), index(v,w)) for w ∈ t(u, v),
/// referencing *global* arc indices (a triad neighbor may live in another
/// shard). Field names match std::pair so the E-step body is generic over
/// the in-RAM and on-disk representations.
struct TriadPair {
  uint32_t first;
  uint32_t second;
};
static_assert(sizeof(TriadPair) == 8);

/// File kinds (first field of both meta payloads).
inline constexpr uint64_t kGraphKind = 1;
inline constexpr uint64_t kShardKind = 2;

/// Payload of the graph file's "meta" section.
struct GraphMeta {
  uint64_t kind;  ///< kGraphKind
  uint64_t num_nodes;
  uint64_t num_arcs;
  uint64_t dimensions;  ///< embedding width l of the shard files
  uint64_t num_shards;
  uint64_t num_connected_pairs;  ///< |C(G)| (the E-step budget unit)
  /// FNV-1a over the closure arc endpoints (the same hash DDM2/DDS1
  /// store): identifies the network every shard file must match.
  uint64_t arc_hash;
  uint64_t reserved0;  ///< must be zero
};
static_assert(sizeof(GraphMeta) == 64);

/// Payload of a shard file's "meta" section.
struct ShardMeta {
  uint64_t kind;  ///< kShardKind
  uint64_t shard_index;
  uint64_t arc_begin;  ///< first global arc index owned by this shard
  uint64_t arc_end;    ///< one past the last owned arc
  uint64_t dimensions;
  uint64_t num_slots;        ///< pattern-carrying (undirected) arcs owned
  uint64_t num_triad_pairs;  ///< total TriadPair entries in the arena
  uint64_t arc_hash;         ///< must equal the graph file's arc_hash
};
static_assert(sizeof(ShardMeta) == 64);

// --- Graph file sections (all required, in this order) -----------------
//   meta      GraphMeta
//   offsets   u64[num_nodes + 1] — CSR row starts into `adj`
//   adj       u32[num_arcs] — sorted neighbor lists; doubles as the
//             arc → dst map (arc e's destination is adj[e])
//   src       u32[num_arcs] — arc → src
//   classes   u8[num_arcs] — core::ArcClass per arc
inline constexpr char kSectionMeta[] = "meta";
inline constexpr char kSectionOffsets[] = "offsets";
inline constexpr char kSectionAdj[] = "adj";
inline constexpr char kSectionSrc[] = "src";
inline constexpr char kSectionClasses[] = "classes";

inline constexpr const char* kGraphSectionOrder[] = {
    kSectionMeta, kSectionOffsets, kSectionAdj, kSectionSrc, kSectionClasses,
};
inline constexpr uint64_t kGraphSectionCount =
    sizeof(kGraphSectionOrder) / sizeof(kGraphSectionOrder[0]);

// --- Shard file sections (all required, in this order) -----------------
//   meta         ShardMeta
//   slot         u32[arc_end - arc_begin] — local arc → local pattern
//                slot, UINT32_MAX for non-undirected arcs
//   label        f64[num_slots] — y^d (Eq. 14) per slot
//   active       u8[num_slots] — y^d > T per slot
//   triad_off    u32[num_slots + 1] — CSR offsets into triad_pairs
//                (empty, rather than [0], when num_slots is 0)
//   triad_pairs  TriadPair[num_triad_pairs]
//   emb          f32[(arc_end - arc_begin) × dimensions] — rows of M
//   conn         f32[(arc_end - arc_begin) × dimensions] — rows of N
//
// emb and conn are deliberately last and adjacent: the resident-budget
// eviction path drops exactly the [emb, end-of-file) byte range, leaving
// the (much smaller, always-hot) pattern arena resident.
inline constexpr char kSectionSlot[] = "slot";
inline constexpr char kSectionLabel[] = "label";
inline constexpr char kSectionActive[] = "active";
inline constexpr char kSectionTriadOffsets[] = "triad_off";
inline constexpr char kSectionTriadPairs[] = "triad_pairs";
inline constexpr char kSectionEmb[] = "emb";
inline constexpr char kSectionConn[] = "conn";

inline constexpr const char* kShardSectionOrder[] = {
    kSectionMeta,         kSectionSlot,       kSectionLabel,
    kSectionActive,       kSectionTriadOffsets, kSectionTriadPairs,
    kSectionEmb,          kSectionConn,
};
inline constexpr uint64_t kShardSectionCount =
    sizeof(kShardSectionOrder) / sizeof(kShardSectionOrder[0]);

/// Rounds `n` up to the next kAlignment boundary.
inline constexpr uint64_t AlignUp(uint64_t n) {
  return (n + kAlignment - 1) & ~(kAlignment - 1);
}

/// Byte offset of the first payload (end of header + section table).
inline constexpr uint64_t TableEnd(uint64_t section_count) {
  return sizeof(Header) + section_count * sizeof(SectionEntry);
}

/// Canonical file names within a store directory.
inline std::string GraphFileName() { return "graph.dds"; }
inline std::string ShardFileName(size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu.dds", shard);
  return buf;
}

}  // namespace deepdirect::graph::shard

#endif  // DEEPDIRECT_GRAPH_SHARD_FORMAT_H_
