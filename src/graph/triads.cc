#include "graph/triads.h"

#include <algorithm>

namespace deepdirect::graph {

TieRelation ClassifyRelation(const MixedSocialNetwork& g, NodeId w, NodeId x) {
  const ArcId forward = g.FindArc(w, x);
  if (forward != kInvalidArc) {
    switch (g.arc(forward).type) {
      case TieType::kDirected:
        return TieRelation::kForward;
      case TieType::kBidirectional:
        return TieRelation::kBoth;
      case TieType::kUndirected:
        return TieRelation::kUnknown;
    }
  }
  const ArcId backward = g.FindArc(x, w);
  DD_CHECK_MSG(backward != kInvalidArc,
               "no tie between " << w << " and " << x);
  // Only a directed tie x -> w lacks the forward arc.
  DD_CHECK(g.arc(backward).type == TieType::kDirected);
  return TieRelation::kBackward;
}

size_t TriadTypeIndex(TieRelation wu, TieRelation wv) {
  return static_cast<size_t>(wu) * 4 + static_cast<size_t>(wv);
}

std::array<uint32_t, kNumTriadTypes> DirectedTriadCounts(
    const MixedSocialNetwork& g, NodeId u, NodeId v) {
  std::array<uint32_t, kNumTriadTypes> counts{};
  for (NodeId w : g.CommonNeighbors(u, v)) {
    if (w == u || w == v) continue;
    const TieRelation wu = ClassifyRelation(g, w, u);
    const TieRelation wv = ClassifyRelation(g, w, v);
    ++counts[TriadTypeIndex(wu, wv)];
  }
  return counts;
}

uint64_t CountTriangles(const MixedSocialNetwork& g) {
  // Forward counting: each triangle {a < b < c} is counted once by scanning
  // b's higher neighbors from a's adjacency.
  uint64_t triangles = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nu = g.UndirectedNeighbors(u);
    for (NodeId v : nu) {
      if (v <= u) continue;
      const auto nv = g.UndirectedNeighbors(v);
      // Count common neighbors w with w > v (so u < v < w counted once).
      auto it_u = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto it_v = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (it_u != nu.end() && it_v != nv.end()) {
        if (*it_u < *it_v) {
          ++it_u;
        } else if (*it_v < *it_u) {
          ++it_v;
        } else {
          ++triangles;
          ++it_u;
          ++it_v;
        }
      }
    }
  }
  return triangles;
}

double GlobalClusteringCoefficient(const MixedSocialNetwork& g) {
  uint64_t triples = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint64_t d = g.UndirectedDegree(u);
    triples += d * (d - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(triples);
}

}  // namespace deepdirect::graph
