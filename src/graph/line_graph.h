// Line digraph construction (Harary & Norman 1960), implementing the
// indirect edge-embedding route the paper discusses and rejects in Sec. 4:
// nodes of the line graph are the arcs of the original network, and there is
// a line-graph edge e1 -> e2 iff e2 is a connected tie of e1.
//
// Provided (a) as a correctness oracle for connected-tie enumeration and
// (b) to demonstrate empirically the size blow-up argument of the paper
// (|V_line| = |E_original|, |E_line| = Σ_v deg_in(v)·deg_out(v)).

#ifndef DEEPDIRECT_GRAPH_LINE_GRAPH_H_
#define DEEPDIRECT_GRAPH_LINE_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/mixed_graph.h"

namespace deepdirect::graph {

/// The line digraph of a mixed social network. Node i of the line graph is
/// arc i of the original network.
struct LineGraph {
  size_t num_nodes = 0;                        ///< = original num_arcs
  std::vector<std::pair<ArcId, ArcId>> edges;  ///< (e1, e2) connected pairs
};

/// Builds the full line digraph. Memory is O(|C(G)|); use
/// PredictLineGraphSize first on large inputs.
LineGraph BuildLineGraph(const MixedSocialNetwork& g);

/// Predicted edge count of the line graph without materializing it
/// (equals g.NumConnectedTiePairs()).
uint64_t PredictLineGraphSize(const MixedSocialNetwork& g);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_LINE_GRAPH_H_
