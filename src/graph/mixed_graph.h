// MixedSocialNetwork: the immutable graph substrate of the library.
//
// The network stores every tie as one or two arcs (see graph/types.h) in a
// CSR layout sorted by (src, dst), with an inverse CSR for in-adjacency and
// a per-node sorted list of distinct undirected neighbors. All paper-level
// quantities — the modified in/out degrees of Eqs. 1–2, tie degrees and
// connected ties of Definition 4, common neighbors for triads — are answered
// from these indexes.
//
// Construction goes through GraphBuilder, which validates input (node range,
// self-loops, duplicate/conflicting ties) and returns Status errors for bad
// data rather than aborting.

#ifndef DEEPDIRECT_GRAPH_MIXED_GRAPH_H_
#define DEEPDIRECT_GRAPH_MIXED_GRAPH_H_

#include <span>
#include <unordered_set>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace deepdirect::graph {

/// Immutable mixed social network (Definition 1 of the paper).
class MixedSocialNetwork {
 public:
  /// Number of individuals |V|.
  size_t num_nodes() const { return num_nodes_; }

  /// Number of arcs |E| in the paper's sense: one per directed tie, two per
  /// bidirectional or undirected tie.
  size_t num_arcs() const { return arcs_.size(); }

  /// Number of distinct social ties (each bidirectional/undirected tie
  /// counted once).
  size_t num_ties() const { return num_ties_; }

  /// Counts of distinct ties per category.
  size_t num_directed_ties() const { return num_directed_ties_; }
  size_t num_bidirectional_ties() const { return num_bidirectional_ties_; }
  size_t num_undirected_ties() const { return num_undirected_ties_; }

  /// The arc with the given id.
  const Arc& arc(ArcId id) const {
    DD_CHECK_LT(id, arcs_.size());
    return arcs_[id];
  }

  /// All arcs, ordered by (src, dst).
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// The twin arc (v, u) of arc (u, v); kInvalidArc for directed arcs.
  ArcId twin(ArcId id) const {
    DD_CHECK_LT(id, twin_.size());
    return twin_[id];
  }

  /// Arc ids leaving `u`, sorted by destination.
  std::span<const ArcId> OutArcs(NodeId u) const;

  /// Arc ids entering `u` (order unspecified).
  std::span<const ArcId> InArcs(NodeId u) const;

  /// The arc (u, v), or kInvalidArc if absent. O(log out-degree).
  ArcId FindArc(NodeId u, NodeId v) const;

  /// Whether the arc (u, v) exists.
  bool HasArc(NodeId u, NodeId v) const { return FindArc(u, v) != kInvalidArc; }

  /// Number of arcs leaving `u`.
  uint32_t OutArcCount(NodeId u) const {
    DD_CHECK_LT(u, num_nodes_);
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  /// Number of arcs entering `u`.
  uint32_t InArcCount(NodeId u) const {
    DD_CHECK_LT(u, num_nodes_);
    return static_cast<uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  /// Modified out-degree of Eq. 1: directed and bidirectional out-ties count
  /// 1, undirected ties count 1/2.
  double DegOut(NodeId u) const;

  /// Modified in-degree of Eq. 2 (mirror of DegOut).
  double DegIn(NodeId u) const;

  /// Total degree deg(u) = deg_out(u) + deg_in(u).
  double Deg(NodeId u) const { return DegOut(u) + DegIn(u); }

  /// Tie degree |c(e)| (Definition 4): the number of connected ties of `e`.
  ///
  /// Note: Eq. 6 of the paper defines deg_tie(e) = |{v' : (v,v') ∈ E}| and
  /// asserts equality with |c(e)|; the two differ by one exactly when the
  /// return arc (v, u) exists. We implement |c(e)| (exclude the return arc),
  /// which is the quantity every formula actually consumes.
  uint32_t TieDegree(ArcId e) const;

  /// All connected ties of `e` (Definition 4): arcs (v, v') with v' != u for
  /// e = (u, v).
  std::vector<ArcId> ConnectedTies(ArcId e) const;

  /// Calls `fn(ArcId)` for every connected tie of `e` without materializing
  /// a vector.
  template <typename Fn>
  void ForEachConnectedTie(ArcId e, Fn&& fn) const {
    const Arc& a = arc(e);
    for (ArcId c : OutArcs(a.dst)) {
      if (arcs_[c].dst != a.src) fn(c);
    }
  }

  /// Samples one connected tie of `e` uniformly; kInvalidArc when c(e) is
  /// empty. O(1) expected (rejection over the out-span of the head node).
  template <typename RngT>
  ArcId SampleConnectedTie(ArcId e, RngT& rng) const {
    const Arc& a = arc(e);
    const auto span = OutArcs(a.dst);
    const uint32_t deg = TieDegree(e);
    if (deg == 0) return kInvalidArc;
    // At most one arc in the span returns to a.src, so rejection terminates
    // quickly (success probability >= 1/2 whenever span.size() >= 2).
    for (;;) {
      ArcId cand = span[rng.NextIndex(span.size())];
      if (arcs_[cand].dst != a.src) return cand;
    }
  }

  /// Total number of connected tie pairs |C(G)| = Σ_e |c(e)|.
  uint64_t NumConnectedTiePairs() const { return num_connected_tie_pairs_; }

  /// Distinct neighbors of `u` under the undirected view (sorted ascending).
  std::span<const NodeId> UndirectedNeighbors(NodeId u) const;

  /// Number of distinct undirected-view neighbors.
  uint32_t UndirectedDegree(NodeId u) const {
    DD_CHECK_LT(u, num_nodes_);
    return static_cast<uint32_t>(und_offsets_[u + 1] - und_offsets_[u]);
  }

  /// Common neighbors of u and v under the undirected view (sorted).
  std::vector<NodeId> CommonNeighbors(NodeId u, NodeId v) const;

  /// Allocation-free variant: clears `out` and fills it with the sorted
  /// common neighbors, reusing its capacity.
  void CommonNeighbors(NodeId u, NodeId v, std::vector<NodeId>& out) const;

  /// Arc ids of all directed arcs (E_d), in (src, dst) order.
  const std::vector<ArcId>& directed_arcs() const { return directed_arcs_; }

  /// Arc ids of all bidirectional arcs (both twins present).
  const std::vector<ArcId>& bidirectional_arcs() const {
    return bidirectional_arcs_;
  }

  /// Arc ids of all undirected arcs (both twins present).
  const std::vector<ArcId>& undirected_arcs() const {
    return undirected_arcs_;
  }

 private:
  friend class GraphBuilder;
  MixedSocialNetwork() = default;

  size_t num_nodes_ = 0;
  size_t num_ties_ = 0;
  size_t num_directed_ties_ = 0;
  size_t num_bidirectional_ties_ = 0;
  size_t num_undirected_ties_ = 0;
  uint64_t num_connected_tie_pairs_ = 0;

  std::vector<Arc> arcs_;          // sorted by (src, dst)
  std::vector<ArcId> twin_;        // twin arc per arc (kInvalidArc if none)
  std::vector<size_t> out_offsets_;  // CSR over arc ids (identity order)
  std::vector<ArcId> out_ids_;       // identity arc-id array backing OutArcs
  std::vector<size_t> in_offsets_;   // CSR offsets for in-adjacency
  std::vector<ArcId> in_adj_;        // arc ids grouped by dst
  std::vector<size_t> und_offsets_;  // CSR offsets for undirected neighbors
  std::vector<NodeId> und_adj_;      // sorted distinct neighbors per node

  std::vector<ArcId> directed_arcs_;
  std::vector<ArcId> bidirectional_arcs_;
  std::vector<ArcId> undirected_arcs_;
};

/// Incremental builder for MixedSocialNetwork.
class GraphBuilder {
 public:
  /// Creates a builder for a network over `num_nodes` individuals with ids
  /// [0, num_nodes).
  explicit GraphBuilder(size_t num_nodes);

  /// Adds one social tie between u and v.
  ///  * kDirected: the tie points u -> v.
  ///  * kBidirectional / kUndirected: order of u, v is irrelevant; both arcs
  ///    are created.
  /// Returns InvalidArgument for out-of-range ids, self-loops, or a second
  /// tie over the same unordered pair.
  util::Status AddTie(NodeId u, NodeId v, TieType type);

  /// Number of ties added so far.
  size_t num_ties() const { return ties_.size(); }

  /// Worker count for the index-assembly passes of Build() (0 = all
  /// hardware threads). Assembly shards nodes into fixed blocks with
  /// disjoint output regions, so the built network is bit-identical for
  /// every thread count.
  void SetNumThreads(size_t num_threads) { num_threads_ = num_threads; }

  /// Finalizes and returns the network. The builder is consumed.
  MixedSocialNetwork Build() &&;

 private:
  struct PendingTie {
    NodeId u, v;
    TieType type;
  };

  size_t num_nodes_;
  size_t num_threads_ = 1;
  std::vector<PendingTie> ties_;
  // Unordered-pair occupancy for duplicate detection.
  std::unordered_set<uint64_t> pair_keys_;
};

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_MIXED_GRAPH_H_
