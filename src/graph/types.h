// Core identifier and tie types for mixed social networks.
//
// Terminology (follows the paper, Sec. 2):
//  * A *social tie* is a relationship between two individuals. It is
//    directed (E_d), bidirectional (E_b), or undirected (E_u).
//  * An *arc* is one ordered instance (u, v) of a tie. A directed tie
//    contributes one arc; bidirectional and undirected ties contribute two
//    arcs (u, v) and (v, u) that are *twins* of each other. This matches
//    Definition 1, where (u,v), (v,u) ∈ E both represent a bidirectional or
//    undirected tie.

#ifndef DEEPDIRECT_GRAPH_TYPES_H_
#define DEEPDIRECT_GRAPH_TYPES_H_

#include <cstdint>
#include <string>

namespace deepdirect::graph {

/// Node identifier, dense in [0, num_nodes).
using NodeId = uint32_t;

/// Arc identifier, dense in [0, num_arcs).
using ArcId = uint32_t;

/// Sentinel for "no arc".
inline constexpr ArcId kInvalidArc = static_cast<ArcId>(-1);

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// The three tie categories of a mixed social network (Definition 1).
enum class TieType : uint8_t {
  kDirected = 0,       ///< direction known, single arc
  kBidirectional = 1,  ///< both directions exist and are known
  kUndirected = 2,     ///< direction unknown (to be learned)
};

/// Returns a short lowercase name ("directed", "bidirectional", "undirected").
const char* TieTypeToString(TieType type);

/// One ordered arc of a social tie.
struct Arc {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  TieType type = TieType::kDirected;

  bool operator==(const Arc& other) const {
    return src == other.src && dst == other.dst && type == other.type;
  }
};

/// Renders an arc as "u->v[t]" for diagnostics.
std::string ArcToString(const Arc& arc);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_TYPES_H_
