// Directed triad census for social ties (Sec. 3.1, "Directed triad count").
//
// For a tie (u, v) and a common neighbor w, the two ties (w, u) and (w, v)
// each fall into one of four relation categories, yielding 4 × 4 = 16 triad
// types. ee_i(u, v) counts the triads of type i over all common neighbors.
// The direction of (u, v) itself is deliberately ignored (it may be
// unknown), per the paper.

#ifndef DEEPDIRECT_GRAPH_TRIADS_H_
#define DEEPDIRECT_GRAPH_TRIADS_H_

#include <array>
#include <cstdint>

#include "graph/mixed_graph.h"

namespace deepdirect::graph {

/// The relation category of the tie between `w` and `x`, from w's viewpoint.
enum class TieRelation : uint8_t {
  kForward = 0,   ///< directed tie w -> x
  kBackward = 1,  ///< directed tie x -> w
  kBoth = 2,      ///< bidirectional tie
  kUnknown = 3,   ///< undirected tie (direction unknown)
};

/// Number of triad types = |TieRelation|^2.
inline constexpr size_t kNumTriadTypes = 16;

/// Classifies the tie between w and x. Both a tie w->x and/or x->w may
/// exist as arcs; exactly one tie exists per pair by construction.
/// Precondition: some tie exists between w and x.
TieRelation ClassifyRelation(const MixedSocialNetwork& g, NodeId w, NodeId x);

/// Triad type index for common neighbor w of tie (u, v):
/// 4 * relation(w, u) + relation(w, v), in [0, 16).
size_t TriadTypeIndex(TieRelation wu, TieRelation wv);

/// Counts the 16 directed triad types over all common neighbors of u and v.
/// This is the ee_i(u, v) feature vector of Table 1.
std::array<uint32_t, kNumTriadTypes> DirectedTriadCounts(
    const MixedSocialNetwork& g, NodeId u, NodeId v);

/// Total number of triangles in the undirected view (each triangle counted
/// once). Used by dataset statistics and generator validation.
uint64_t CountTriangles(const MixedSocialNetwork& g);

/// Global clustering coefficient of the undirected view:
/// 3·triangles / number of connected node triples.
double GlobalClusteringCoefficient(const MixedSocialNetwork& g);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_TRIADS_H_
