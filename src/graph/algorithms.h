// Basic graph algorithms over the undirected view of a mixed social network:
// BFS distances, connected components, and the sampling / transformation
// utilities the paper's experimental pipeline relies on (BFS subnetwork
// sampling, top-degree extraction, hiding directions of directed ties).

#ifndef DEEPDIRECT_GRAPH_ALGORITHMS_H_
#define DEEPDIRECT_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/mixed_graph.h"
#include "util/random.h"

namespace deepdirect::graph {

/// Distance value for unreachable nodes in BFS results.
inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);

/// Unweighted shortest-path distances from `source` over the undirected view
/// (the paper treats the network as undirected for shortest paths, Sec. 3.1).
std::vector<uint32_t> BfsDistances(const MixedSocialNetwork& g, NodeId source);

/// Connected-component label per node (labels dense in [0, k)) under the
/// undirected view; returns the number of components via `num_components`.
std::vector<uint32_t> ConnectedComponents(const MixedSocialNetwork& g,
                                          size_t* num_components);

/// Result of hiding the directions of part of E_d: the transformed network
/// plus ground truth for evaluation.
struct HiddenDirectionSplit {
  /// Network where the selected directed ties became undirected ties.
  MixedSocialNetwork network;
  /// For every undirected arc (u, v) in `network` that came from a hidden
  /// directed tie: 1.0 if the true direction was u -> v, else 0.0. Indexed
  /// by arc id in `network`; arcs that were not hidden hold -1.0.
  std::vector<double> true_label;
  /// Arc ids (in `network`) of the hidden arcs whose true label is 1
  /// (i.e. the canonical true-direction arc for each hidden tie).
  std::vector<ArcId> hidden_true_arcs;
};

/// Hides the directions of a uniformly random subset of directed ties so
/// that `directed_fraction` of the original directed ties remain directed
/// (the rest become undirected, exactly as the paper's Sec. 6.2 protocol).
/// Bidirectional ties are untouched.
HiddenDirectionSplit HideDirections(const MixedSocialNetwork& g,
                                    double directed_fraction, util::Rng& rng);

/// BFS-samples a subnetwork of approximately `target_nodes` nodes starting
/// from `seed_node` (paper Sec. 6.1 preprocessing). Keeps every tie whose
/// both endpoints were visited. Node ids are re-densified.
MixedSocialNetwork BfsSample(const MixedSocialNetwork& g, NodeId seed_node,
                             size_t target_nodes);

/// Extracts the subnetwork induced by the `fraction` of nodes with highest
/// total degree (paper Sec. 6.2.5 visualization protocol). Node ids are
/// re-densified; isolated nodes are dropped.
MixedSocialNetwork TopDegreeSubnetwork(const MixedSocialNetwork& g,
                                       double fraction);

/// Removes a uniformly random `holdout_fraction` of ties (for the link
/// prediction protocol, Sec. 6.3: "all the individuals and 80% of social
/// ties"). Returns the reduced network and the list of removed ties as
/// (u, v) node pairs with their original type.
struct TieHoldout {
  MixedSocialNetwork network;
  std::vector<Arc> removed_ties;  // one entry per removed tie (not per arc)
};
TieHoldout HoldOutTies(const MixedSocialNetwork& g, double holdout_fraction,
                       util::Rng& rng);

}  // namespace deepdirect::graph

#endif  // DEEPDIRECT_GRAPH_ALGORITHMS_H_
