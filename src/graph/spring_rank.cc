#include "graph/spring_rank.h"

#include <cmath>

namespace deepdirect::graph {

namespace {

// y = (L + αI) x for the spring Laplacian of the arc list.
void ApplyOperator(size_t n,
                   const std::vector<std::pair<NodeId, NodeId>>& arcs,
                   double alpha, const std::vector<double>& x,
                   std::vector<double>& y) {
  for (size_t i = 0; i < n; ++i) y[i] = alpha * x[i];
  for (const auto& [src, dst] : arcs) {
    // Each spring contributes (s_dst − s_src − 1)²: the Laplacian part is
    // +1 on both diagonals and −1 off-diagonal.
    y[src] += x[src] - x[dst];
    y[dst] += x[dst] - x[src];
  }
}

}  // namespace

std::vector<double> SolveSpringSystem(
    size_t n, const std::vector<std::pair<NodeId, NodeId>>& arcs,
    const SpringRankConfig& config) {
  DD_CHECK_GT(n, 0u);
  DD_CHECK_GT(config.alpha, 0.0);

  // Right-hand side: ∂H/∂s_i = 0 gives b_i = in(i) − out(i).
  std::vector<double> b(n, 0.0);
  for (const auto& [src, dst] : arcs) {
    b[dst] += 1.0;
    b[src] -= 1.0;
  }

  // Conjugate gradients on the symmetric positive-definite system.
  std::vector<double> s(n, 0.0);          // solution
  std::vector<double> residual = b;       // r = b − A·0
  std::vector<double> direction = residual;
  std::vector<double> operator_out(n, 0.0);

  double residual_norm_sq = 0.0;
  for (double r : residual) residual_norm_sq += r * r;
  const double threshold =
      config.tolerance * config.tolerance * std::max(residual_norm_sq, 1.0);

  for (size_t iteration = 0;
       iteration < config.max_iterations && residual_norm_sq > threshold;
       ++iteration) {
    ApplyOperator(n, arcs, config.alpha, direction, operator_out);
    double direction_energy = 0.0;
    for (size_t i = 0; i < n; ++i) {
      direction_energy += direction[i] * operator_out[i];
    }
    if (direction_energy <= 0.0) break;  // numerical safety
    const double step = residual_norm_sq / direction_energy;
    double next_residual_norm_sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      s[i] += step * direction[i];
      residual[i] -= step * operator_out[i];
      next_residual_norm_sq += residual[i] * residual[i];
    }
    const double ratio = next_residual_norm_sq / residual_norm_sq;
    for (size_t i = 0; i < n; ++i) {
      direction[i] = residual[i] + ratio * direction[i];
    }
    residual_norm_sq = next_residual_norm_sq;
  }
  return s;
}

std::vector<double> SpringRank(const MixedSocialNetwork& g,
                               const SpringRankConfig& config) {
  std::vector<std::pair<NodeId, NodeId>> arcs;
  arcs.reserve(g.directed_arcs().size());
  for (ArcId id : g.directed_arcs()) {
    const Arc& arc = g.arc(id);
    arcs.emplace_back(arc.src, arc.dst);
  }
  return SolveSpringSystem(g.num_nodes(), arcs, config);
}

}  // namespace deepdirect::graph
