#include "graph/mixed_graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "train/parallel.h"

namespace deepdirect::graph {

namespace {

// Fixed shard sizes for the parallel assembly passes of GraphBuilder::Build.
// The decomposition depends only on the problem size (never the worker
// count), so the built indexes are bit-identical for every `num_threads`.
constexpr size_t kArcBlock = 4096;
constexpr size_t kNodeBlock = 1024;

// Packs an unordered node pair into one key (smaller id in the high word so
// keys are unique per pair regardless of insertion order).
uint64_t PairKey(NodeId u, NodeId v) {
  NodeId lo = std::min(u, v);
  NodeId hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::span<const ArcId> MixedSocialNetwork::OutArcs(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  const size_t begin = out_offsets_[u];
  const size_t end = out_offsets_[u + 1];
  if (begin == end) return {};
  return {out_ids_.data() + begin, end - begin};
}

std::span<const ArcId> MixedSocialNetwork::InArcs(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  const size_t begin = in_offsets_[u];
  const size_t end = in_offsets_[u + 1];
  if (begin == end) return {};
  return {in_adj_.data() + begin, end - begin};
}

ArcId MixedSocialNetwork::FindArc(NodeId u, NodeId v) const {
  DD_CHECK_LT(u, num_nodes_);
  DD_CHECK_LT(v, num_nodes_);
  const auto span = OutArcs(u);
  // Arcs in a span are sorted by destination; binary search on dst.
  auto it = std::lower_bound(span.begin(), span.end(), v,
                             [this](ArcId a, NodeId node) {
                               return arcs_[a].dst < node;
                             });
  if (it != span.end() && arcs_[*it].dst == v) return *it;
  return kInvalidArc;
}

double MixedSocialNetwork::DegOut(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  // Every undirected tie incident to u has an arc leaving u (both twins are
  // stored), so OutArcs alone realizes Eq. 1.
  double deg = 0.0;
  for (ArcId a : OutArcs(u)) {
    deg += arcs_[a].type == TieType::kUndirected ? 0.5 : 1.0;
  }
  return deg;
}

double MixedSocialNetwork::DegIn(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  double deg = 0.0;
  for (ArcId a : InArcs(u)) {
    deg += arcs_[a].type == TieType::kUndirected ? 0.5 : 1.0;
  }
  return deg;
}

uint32_t MixedSocialNetwork::TieDegree(ArcId e) const {
  const Arc& a = arc(e);
  uint32_t deg = OutArcCount(a.dst);
  if (HasArc(a.dst, a.src)) --deg;  // exclude the return arc (v, u)
  return deg;
}

std::vector<ArcId> MixedSocialNetwork::ConnectedTies(ArcId e) const {
  std::vector<ArcId> out;
  out.reserve(TieDegree(e));
  ForEachConnectedTie(e, [&](ArcId c) { out.push_back(c); });
  return out;
}

std::span<const NodeId> MixedSocialNetwork::UndirectedNeighbors(
    NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  const size_t begin = und_offsets_[u];
  const size_t end = und_offsets_[u + 1];
  if (begin == end) return {};
  return {und_adj_.data() + begin, end - begin};
}

std::vector<NodeId> MixedSocialNetwork::CommonNeighbors(NodeId u,
                                                        NodeId v) const {
  std::vector<NodeId> out;
  CommonNeighbors(u, v, out);
  return out;
}

void MixedSocialNetwork::CommonNeighbors(NodeId u, NodeId v,
                                         std::vector<NodeId>& out) const {
  const auto nu = UndirectedNeighbors(u);
  const auto nv = UndirectedNeighbors(v);
  out.clear();
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(out));
}

GraphBuilder::GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

util::Status GraphBuilder::AddTie(NodeId u, NodeId v, TieType type) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    std::ostringstream os;
    os << "tie (" << u << ", " << v << ") out of node range [0, "
       << num_nodes_ << ")";
    return util::Status::InvalidArgument(os.str());
  }
  if (u == v) {
    std::ostringstream os;
    os << "self-loop on node " << u << " is not a social tie";
    return util::Status::InvalidArgument(os.str());
  }
  if (!pair_keys_.insert(PairKey(u, v)).second) {
    std::ostringstream os;
    os << "duplicate tie over pair {" << u << ", " << v << "}";
    return util::Status::InvalidArgument(os.str());
  }
  ties_.push_back({u, v, type});
  return util::Status::OK();
}

MixedSocialNetwork GraphBuilder::Build() && {
  MixedSocialNetwork g;
  g.num_nodes_ = num_nodes_;
  g.num_ties_ = ties_.size();

  // Expand ties into arcs.
  g.arcs_.reserve(ties_.size() * 2);
  for (const PendingTie& t : ties_) {
    g.arcs_.push_back({t.u, t.v, t.type});
    if (t.type != TieType::kDirected) {
      g.arcs_.push_back({t.v, t.u, t.type});
    }
    switch (t.type) {
      case TieType::kDirected:
        ++g.num_directed_ties_;
        break;
      case TieType::kBidirectional:
        ++g.num_bidirectional_ties_;
        break;
      case TieType::kUndirected:
        ++g.num_undirected_ties_;
        break;
    }
  }

  // Canonical arc order: (src, dst).
  std::sort(g.arcs_.begin(), g.arcs_.end(), [](const Arc& a, const Arc& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  const size_t num_arcs = g.arcs_.size();
  g.out_ids_.resize(num_arcs);
  std::iota(g.out_ids_.begin(), g.out_ids_.end(), 0);

  // Out CSR offsets.
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  for (const Arc& a : g.arcs_) ++g.out_offsets_[a.src + 1];
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }

  // In CSR.
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Arc& a : g.arcs_) ++g.in_offsets_[a.dst + 1];
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.in_adj_.resize(num_arcs);
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (ArcId id = 0; id < num_arcs; ++id) {
      g.in_adj_[cursor[g.arcs_[id].dst]++] = id;
    }
  }

  // Twin resolution is a per-arc binary search with disjoint writes —
  // shard it across workers. The per-type arc lists stay a serial append
  // so their id order is invariant.
  g.twin_.assign(num_arcs, kInvalidArc);
  train::ParallelBlocks(
      num_arcs, kArcBlock, num_threads_,
      [&](size_t, size_t begin, size_t end) {
        for (ArcId id = static_cast<ArcId>(begin); id < end; ++id) {
          const Arc& a = g.arcs_[id];
          if (a.type != TieType::kDirected) {
            g.twin_[id] = g.FindArc(a.dst, a.src);
            DD_CHECK_NE(g.twin_[id], kInvalidArc);
          }
        }
      });
  for (ArcId id = 0; id < num_arcs; ++id) {
    switch (g.arcs_[id].type) {
      case TieType::kDirected:
        g.directed_arcs_.push_back(id);
        break;
      case TieType::kBidirectional:
        g.bidirectional_arcs_.push_back(id);
        break;
      case TieType::kUndirected:
        g.undirected_arcs_.push_back(id);
        break;
    }
  }

  // Undirected neighbor lists (sorted, distinct), built in two counting
  // passes straight into the final CSR arrays — no per-node vectors.
  //
  // A pair hosts at most one tie, so the out- and in-neighbor lists of a
  // node overlap exactly on its non-directed arcs (each such out arc
  // (u, v) has the twin (v, u) contributing the same neighbor v to the in
  // list). Hence |distinct| = out + in − #non-directed-out.
  g.und_offsets_.assign(num_nodes_ + 1, 0);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    size_t count = g.OutArcCount(u) + g.InArcCount(u);
    for (ArcId a : g.OutArcs(u)) {
      if (g.arcs_[a].type != TieType::kDirected) --count;
    }
    g.und_offsets_[u + 1] = g.und_offsets_[u] + count;
  }
  // Pass 2: merge the sorted out-dst and in-src lists of each node into its
  // final CSR slice. Out arcs are sorted by dst; in_adj_ was filled in
  // ascending arc-id = ascending src order, so both inputs are sorted.
  // Nodes shard into fixed blocks with disjoint output regions.
  g.und_adj_.resize(g.und_offsets_[num_nodes_]);
  train::ParallelBlocks(
      num_nodes_, kNodeBlock, num_threads_,
      [&](size_t, size_t begin, size_t end) {
        for (NodeId u = static_cast<NodeId>(begin); u < end; ++u) {
          const auto out_arcs = g.OutArcs(u);
          const auto in_arcs = g.InArcs(u);
          size_t i = 0, j = 0;
          size_t w = g.und_offsets_[u];
          while (i < out_arcs.size() || j < in_arcs.size()) {
            NodeId next;
            if (j >= in_arcs.size()) {
              next = g.arcs_[out_arcs[i++]].dst;
            } else if (i >= out_arcs.size()) {
              next = g.arcs_[in_arcs[j++]].src;
            } else {
              const NodeId a = g.arcs_[out_arcs[i]].dst;
              const NodeId b = g.arcs_[in_arcs[j]].src;
              next = std::min(a, b);
              if (a <= next) ++i;
              if (b <= next) ++j;
            }
            g.und_adj_[w++] = next;
          }
          DD_CHECK_EQ(w, g.und_offsets_[u + 1]);
        }
      });

  // |C(G)| = Σ_e |c(e)|: integer partial sums per block, reduced in block
  // order (exact, so thread count cannot change the result).
  {
    const size_t blocks = train::NumBlocks(num_arcs, kArcBlock);
    std::vector<uint64_t> partial(blocks, 0);
    train::ParallelBlocks(
        num_arcs, kArcBlock, num_threads_,
        [&](size_t b, size_t begin, size_t end) {
          uint64_t pairs = 0;
          for (ArcId id = static_cast<ArcId>(begin); id < end; ++id) {
            pairs += g.TieDegree(id);
          }
          partial[b] = pairs;
        });
    uint64_t pairs = 0;
    for (uint64_t p : partial) pairs += p;
    g.num_connected_tie_pairs_ = pairs;
  }

  return g;
}

}  // namespace deepdirect::graph
