#include "graph/mixed_graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace deepdirect::graph {

namespace {

// Packs an unordered node pair into one key (smaller id in the high word so
// keys are unique per pair regardless of insertion order).
uint64_t PairKey(NodeId u, NodeId v) {
  NodeId lo = std::min(u, v);
  NodeId hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

std::span<const ArcId> MixedSocialNetwork::OutArcs(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  const size_t begin = out_offsets_[u];
  const size_t end = out_offsets_[u + 1];
  if (begin == end) return {};
  return {out_ids_.data() + begin, end - begin};
}

std::span<const ArcId> MixedSocialNetwork::InArcs(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  const size_t begin = in_offsets_[u];
  const size_t end = in_offsets_[u + 1];
  if (begin == end) return {};
  return {in_adj_.data() + begin, end - begin};
}

ArcId MixedSocialNetwork::FindArc(NodeId u, NodeId v) const {
  DD_CHECK_LT(u, num_nodes_);
  DD_CHECK_LT(v, num_nodes_);
  const auto span = OutArcs(u);
  // Arcs in a span are sorted by destination; binary search on dst.
  auto it = std::lower_bound(span.begin(), span.end(), v,
                             [this](ArcId a, NodeId node) {
                               return arcs_[a].dst < node;
                             });
  if (it != span.end() && arcs_[*it].dst == v) return *it;
  return kInvalidArc;
}

double MixedSocialNetwork::DegOut(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  // Every undirected tie incident to u has an arc leaving u (both twins are
  // stored), so OutArcs alone realizes Eq. 1.
  double deg = 0.0;
  for (ArcId a : OutArcs(u)) {
    deg += arcs_[a].type == TieType::kUndirected ? 0.5 : 1.0;
  }
  return deg;
}

double MixedSocialNetwork::DegIn(NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  double deg = 0.0;
  for (ArcId a : InArcs(u)) {
    deg += arcs_[a].type == TieType::kUndirected ? 0.5 : 1.0;
  }
  return deg;
}

uint32_t MixedSocialNetwork::TieDegree(ArcId e) const {
  const Arc& a = arc(e);
  uint32_t deg = OutArcCount(a.dst);
  if (HasArc(a.dst, a.src)) --deg;  // exclude the return arc (v, u)
  return deg;
}

std::vector<ArcId> MixedSocialNetwork::ConnectedTies(ArcId e) const {
  std::vector<ArcId> out;
  out.reserve(TieDegree(e));
  ForEachConnectedTie(e, [&](ArcId c) { out.push_back(c); });
  return out;
}

std::span<const NodeId> MixedSocialNetwork::UndirectedNeighbors(
    NodeId u) const {
  DD_CHECK_LT(u, num_nodes_);
  const size_t begin = und_offsets_[u];
  const size_t end = und_offsets_[u + 1];
  if (begin == end) return {};
  return {und_adj_.data() + begin, end - begin};
}

std::vector<NodeId> MixedSocialNetwork::CommonNeighbors(NodeId u,
                                                        NodeId v) const {
  const auto nu = UndirectedNeighbors(u);
  const auto nv = UndirectedNeighbors(v);
  std::vector<NodeId> out;
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(out));
  return out;
}

GraphBuilder::GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

util::Status GraphBuilder::AddTie(NodeId u, NodeId v, TieType type) {
  if (u >= num_nodes_ || v >= num_nodes_) {
    std::ostringstream os;
    os << "tie (" << u << ", " << v << ") out of node range [0, "
       << num_nodes_ << ")";
    return util::Status::InvalidArgument(os.str());
  }
  if (u == v) {
    std::ostringstream os;
    os << "self-loop on node " << u << " is not a social tie";
    return util::Status::InvalidArgument(os.str());
  }
  if (!pair_keys_.insert(PairKey(u, v)).second) {
    std::ostringstream os;
    os << "duplicate tie over pair {" << u << ", " << v << "}";
    return util::Status::InvalidArgument(os.str());
  }
  ties_.push_back({u, v, type});
  return util::Status::OK();
}

MixedSocialNetwork GraphBuilder::Build() && {
  MixedSocialNetwork g;
  g.num_nodes_ = num_nodes_;
  g.num_ties_ = ties_.size();

  // Expand ties into arcs.
  g.arcs_.reserve(ties_.size() * 2);
  for (const PendingTie& t : ties_) {
    g.arcs_.push_back({t.u, t.v, t.type});
    if (t.type != TieType::kDirected) {
      g.arcs_.push_back({t.v, t.u, t.type});
    }
    switch (t.type) {
      case TieType::kDirected:
        ++g.num_directed_ties_;
        break;
      case TieType::kBidirectional:
        ++g.num_bidirectional_ties_;
        break;
      case TieType::kUndirected:
        ++g.num_undirected_ties_;
        break;
    }
  }

  // Canonical arc order: (src, dst).
  std::sort(g.arcs_.begin(), g.arcs_.end(), [](const Arc& a, const Arc& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  const size_t num_arcs = g.arcs_.size();
  g.out_ids_.resize(num_arcs);
  std::iota(g.out_ids_.begin(), g.out_ids_.end(), 0);

  // Out CSR offsets.
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  for (const Arc& a : g.arcs_) ++g.out_offsets_[a.src + 1];
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }

  // In CSR.
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Arc& a : g.arcs_) ++g.in_offsets_[a.dst + 1];
  for (size_t i = 1; i <= num_nodes_; ++i) {
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  g.in_adj_.resize(num_arcs);
  {
    std::vector<size_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (ArcId id = 0; id < num_arcs; ++id) {
      g.in_adj_[cursor[g.arcs_[id].dst]++] = id;
    }
  }

  // Twins and per-type arc lists.
  g.twin_.assign(num_arcs, kInvalidArc);
  for (ArcId id = 0; id < num_arcs; ++id) {
    const Arc& a = g.arcs_[id];
    if (a.type != TieType::kDirected) {
      g.twin_[id] = g.FindArc(a.dst, a.src);
      DD_CHECK_NE(g.twin_[id], kInvalidArc);
    }
    switch (a.type) {
      case TieType::kDirected:
        g.directed_arcs_.push_back(id);
        break;
      case TieType::kBidirectional:
        g.bidirectional_arcs_.push_back(id);
        break;
      case TieType::kUndirected:
        g.undirected_arcs_.push_back(id);
        break;
    }
  }

  // Undirected neighbor lists (sorted, distinct). A pair hosts at most one
  // tie, so out-neighbors and in-neighbors can overlap only through twins;
  // merge + dedup handles all cases uniformly.
  g.und_offsets_.assign(num_nodes_ + 1, 0);
  std::vector<NodeId> scratch;
  std::vector<std::vector<NodeId>> per_node(num_nodes_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    scratch.clear();
    for (ArcId a : g.OutArcs(u)) scratch.push_back(g.arcs_[a].dst);
    for (ArcId a : g.InArcs(u)) scratch.push_back(g.arcs_[a].src);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    per_node[u] = scratch;
    g.und_offsets_[u + 1] = g.und_offsets_[u] + scratch.size();
  }
  g.und_adj_.reserve(g.und_offsets_[num_nodes_]);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    g.und_adj_.insert(g.und_adj_.end(), per_node[u].begin(),
                      per_node[u].end());
  }

  // |C(G)| = Σ_e |c(e)|.
  uint64_t pairs = 0;
  for (ArcId id = 0; id < num_arcs; ++id) pairs += g.TieDegree(id);
  g.num_connected_tie_pairs_ = pairs;

  return g;
}

}  // namespace deepdirect::graph
