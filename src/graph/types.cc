#include "graph/types.h"

#include <sstream>

namespace deepdirect::graph {

const char* TieTypeToString(TieType type) {
  switch (type) {
    case TieType::kDirected:
      return "directed";
    case TieType::kBidirectional:
      return "bidirectional";
    case TieType::kUndirected:
      return "undirected";
  }
  return "unknown";
}

std::string ArcToString(const Arc& arc) {
  std::ostringstream os;
  os << arc.src << "->" << arc.dst << "[" << TieTypeToString(arc.type) << "]";
  return os.str();
}

}  // namespace deepdirect::graph
