#include "graph/line_graph.h"

namespace deepdirect::graph {

LineGraph BuildLineGraph(const MixedSocialNetwork& g) {
  LineGraph line;
  line.num_nodes = g.num_arcs();
  line.edges.reserve(g.NumConnectedTiePairs());
  for (ArcId e = 0; e < g.num_arcs(); ++e) {
    g.ForEachConnectedTie(
        e, [&](ArcId c) { line.edges.emplace_back(e, c); });
  }
  return line;
}

uint64_t PredictLineGraphSize(const MixedSocialNetwork& g) {
  return g.NumConnectedTiePairs();
}

}  // namespace deepdirect::graph
