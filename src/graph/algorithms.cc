#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace deepdirect::graph {

std::vector<uint32_t> BfsDistances(const MixedSocialNetwork& g,
                                   NodeId source) {
  DD_CHECK_LT(source, g.num_nodes());
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.UndirectedNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<uint32_t> ConnectedComponents(const MixedSocialNetwork& g,
                                          size_t* num_components) {
  std::vector<uint32_t> label(g.num_nodes(), kUnreachable);
  uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (label[s] != kUnreachable) continue;
    label[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.UndirectedNeighbors(u)) {
        if (label[v] == kUnreachable) {
          label[v] = next;
          queue.push_back(v);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return label;
}

HiddenDirectionSplit HideDirections(const MixedSocialNetwork& g,
                                    double directed_fraction, util::Rng& rng) {
  DD_CHECK_GE(directed_fraction, 0.0);
  DD_CHECK_LE(directed_fraction, 1.0);

  const std::vector<ArcId>& directed = g.directed_arcs();
  const size_t num_directed = directed.size();
  const size_t keep = static_cast<size_t>(directed_fraction * num_directed);
  // The paper requires |E_d| > 0; keep at least one tie directed whenever
  // possible so the TDL problem stays well-posed.
  const size_t keep_clamped = std::max<size_t>(keep, num_directed > 0 ? 1 : 0);

  std::vector<uint8_t> keep_flag(num_directed, 0);
  for (size_t i : rng.SampleWithoutReplacement(num_directed, keep_clamped)) {
    keep_flag[i] = 1;
  }

  GraphBuilder builder(g.num_nodes());
  // Hidden ties remembered as (src, dst) = true direction.
  std::vector<Arc> hidden;
  for (size_t i = 0; i < num_directed; ++i) {
    const Arc& a = g.arc(directed[i]);
    if (keep_flag[i]) {
      DD_CHECK(builder.AddTie(a.src, a.dst, TieType::kDirected).ok());
    } else {
      DD_CHECK(builder.AddTie(a.src, a.dst, TieType::kUndirected).ok());
      hidden.push_back(a);
    }
  }
  for (ArcId id : g.bidirectional_arcs()) {
    const Arc& a = g.arc(id);
    if (a.src < a.dst) {  // add each bidirectional tie once
      DD_CHECK(builder.AddTie(a.src, a.dst, TieType::kBidirectional).ok());
    }
  }
  for (ArcId id : g.undirected_arcs()) {
    const Arc& a = g.arc(id);
    if (a.src < a.dst) {
      DD_CHECK(builder.AddTie(a.src, a.dst, TieType::kUndirected).ok());
    }
  }

  HiddenDirectionSplit split{std::move(builder).Build(), {}, {}};
  split.true_label.assign(split.network.num_arcs(), -1.0);
  split.hidden_true_arcs.reserve(hidden.size());
  for (const Arc& h : hidden) {
    const ArcId fwd = split.network.FindArc(h.src, h.dst);
    const ArcId bwd = split.network.FindArc(h.dst, h.src);
    DD_CHECK_NE(fwd, kInvalidArc);
    DD_CHECK_NE(bwd, kInvalidArc);
    split.true_label[fwd] = 1.0;
    split.true_label[bwd] = 0.0;
    split.hidden_true_arcs.push_back(fwd);
  }
  return split;
}

namespace {

// Builds the subnetwork induced by the given kept nodes (marked in `keep`),
// re-densifying node ids.
MixedSocialNetwork InducedSubnetwork(const MixedSocialNetwork& g,
                                     const std::vector<uint8_t>& keep) {
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (keep[u]) remap[u] = next++;
  }
  GraphBuilder builder(next);
  for (ArcId id = 0; id < g.num_arcs(); ++id) {
    const Arc& a = g.arc(id);
    if (!keep[a.src] || !keep[a.dst]) continue;
    // Add each tie exactly once: directed arcs are unique already; twins of
    // bidirectional/undirected ties are added from the smaller endpoint.
    if (a.type != TieType::kDirected && a.src > a.dst) continue;
    DD_CHECK(builder.AddTie(remap[a.src], remap[a.dst], a.type).ok());
  }
  return std::move(builder).Build();
}

}  // namespace

MixedSocialNetwork BfsSample(const MixedSocialNetwork& g, NodeId seed_node,
                             size_t target_nodes) {
  DD_CHECK_LT(seed_node, g.num_nodes());
  DD_CHECK_GT(target_nodes, 0u);
  std::vector<uint8_t> keep(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  size_t kept = 0;
  keep[seed_node] = 1;
  ++kept;
  queue.push_back(seed_node);
  while (!queue.empty() && kept < target_nodes) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.UndirectedNeighbors(u)) {
      if (!keep[v]) {
        keep[v] = 1;
        queue.push_back(v);
        if (++kept >= target_nodes) break;
      }
    }
  }
  return InducedSubnetwork(g, keep);
}

MixedSocialNetwork TopDegreeSubnetwork(const MixedSocialNetwork& g,
                                       double fraction) {
  DD_CHECK_GT(fraction, 0.0);
  DD_CHECK_LE(fraction, 1.0);
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    const double da = g.Deg(a), db = g.Deg(b);
    return da != db ? da > db : a < b;
  });
  const size_t count =
      std::max<size_t>(1, static_cast<size_t>(fraction * g.num_nodes()));
  std::vector<uint8_t> keep(g.num_nodes(), 0);
  for (size_t i = 0; i < count; ++i) keep[order[i]] = 1;

  // Drop nodes isolated within the induced set so ids stay meaningful.
  std::vector<uint8_t> connected(g.num_nodes(), 0);
  for (ArcId id = 0; id < g.num_arcs(); ++id) {
    const Arc& a = g.arc(id);
    if (keep[a.src] && keep[a.dst]) {
      connected[a.src] = 1;
      connected[a.dst] = 1;
    }
  }
  return InducedSubnetwork(g, connected);
}

TieHoldout HoldOutTies(const MixedSocialNetwork& g, double holdout_fraction,
                       util::Rng& rng) {
  DD_CHECK_GE(holdout_fraction, 0.0);
  DD_CHECK_LT(holdout_fraction, 1.0);

  // Enumerate distinct ties as canonical arcs.
  std::vector<Arc> ties;
  ties.reserve(g.num_ties());
  for (ArcId id = 0; id < g.num_arcs(); ++id) {
    const Arc& a = g.arc(id);
    if (a.type != TieType::kDirected && a.src > a.dst) continue;
    ties.push_back(a);
  }
  DD_CHECK_EQ(ties.size(), g.num_ties());

  const size_t remove_count =
      static_cast<size_t>(holdout_fraction * ties.size());
  std::vector<uint8_t> removed(ties.size(), 0);
  for (size_t i : rng.SampleWithoutReplacement(ties.size(), remove_count)) {
    removed[i] = 1;
  }

  GraphBuilder builder(g.num_nodes());
  std::vector<Arc> removed_ties;
  for (size_t i = 0; i < ties.size(); ++i) {
    if (removed[i]) {
      removed_ties.push_back(ties[i]);
    } else {
      DD_CHECK(builder.AddTie(ties[i].src, ties[i].dst, ties[i].type).ok());
    }
  }
  return TieHoldout{std::move(builder).Build(), std::move(removed_ties)};
}

}  // namespace deepdirect::graph
