// Walker's alias method for O(1) sampling from a discrete distribution.
//
// DeepDirect's training loop samples ties from two non-uniform
// distributions on every iteration: P_c(e) ∝ deg_tie(e) for the source tie
// and P_n(e) ∝ deg_tie(e)^{3/4} for negative ties. The alias table makes
// each draw constant time after O(|E|) construction.

#ifndef DEEPDIRECT_UTIL_ALIAS_TABLE_H_
#define DEEPDIRECT_UTIL_ALIAS_TABLE_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace deepdirect::util {

/// Immutable alias table over indices [0, n).
class AliasTable {
 public:
  /// Builds the table from non-negative weights. At least one weight must be
  /// positive; weights need not be normalized.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws one index with probability proportional to its weight.
  size_t Sample(Rng& rng) const;

  /// Number of outcomes.
  size_t size() const { return prob_.size(); }

  /// Probability assigned to outcome `i` (normalized). Exposed for testing.
  double Probability(size_t i) const;

 private:
  std::vector<double> prob_;    // acceptance probability per bucket
  std::vector<uint32_t> alias_;  // alternative outcome per bucket
  std::vector<double> normalized_;  // normalized input weights (for tests)
};

}  // namespace deepdirect::util

#endif  // DEEPDIRECT_UTIL_ALIAS_TABLE_H_
