// Lightweight CHECK macros for programmer-error assertions.
//
// Following the convention of database systems code (RocksDB, Arrow), these
// macros abort the process with a diagnostic on violation. They are active in
// all build types: invariant violations in a data system should never be
// silently ignored in release builds.

#ifndef DEEPDIRECT_UTIL_CHECK_H_
#define DEEPDIRECT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace deepdirect::util {

/// Prints a fatal diagnostic and aborts. Used by the DD_CHECK family.
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& message) {
  std::fprintf(stderr, "DD_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace deepdirect::util

/// Aborts with a diagnostic unless `cond` holds.
#define DD_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::deepdirect::util::CheckFailed(#cond, __FILE__, __LINE__, ""); \
    }                                                                 \
  } while (0)

/// Aborts with a diagnostic and a streamed message unless `cond` holds.
/// Usage: DD_CHECK_MSG(x > 0, "x was " << x);
#define DD_CHECK_MSG(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream dd_check_stream_;                             \
      dd_check_stream_ << msg; /* NOLINT */                            \
      ::deepdirect::util::CheckFailed(#cond, __FILE__, __LINE__,       \
                                      dd_check_stream_.str());         \
    }                                                                  \
  } while (0)

#define DD_CHECK_EQ(a, b) DD_CHECK_MSG((a) == (b), "lhs=" << (a) << " rhs=" << (b))
#define DD_CHECK_NE(a, b) DD_CHECK_MSG((a) != (b), "lhs=" << (a) << " rhs=" << (b))
#define DD_CHECK_LT(a, b) DD_CHECK_MSG((a) < (b), "lhs=" << (a) << " rhs=" << (b))
#define DD_CHECK_LE(a, b) DD_CHECK_MSG((a) <= (b), "lhs=" << (a) << " rhs=" << (b))
#define DD_CHECK_GT(a, b) DD_CHECK_MSG((a) > (b), "lhs=" << (a) << " rhs=" << (b))
#define DD_CHECK_GE(a, b) DD_CHECK_MSG((a) >= (b), "lhs=" << (a) << " rhs=" << (b))

#endif  // DEEPDIRECT_UTIL_CHECK_H_
