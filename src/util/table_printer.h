// Fixed-width table printing so figure benches emit the same rows/series the
// paper reports in a readable form.

#ifndef DEEPDIRECT_UTIL_TABLE_PRINTER_H_
#define DEEPDIRECT_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace deepdirect::util {

/// Collects rows of string cells and prints them column-aligned to stdout.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: appends a row of a label followed by doubles.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int precision = 4);

  /// Prints the aligned table to stdout.
  void Print() const;

  /// Formats a double with fixed precision.
  static std::string FormatDouble(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deepdirect::util

#endif  // DEEPDIRECT_UTIL_TABLE_PRINTER_H_
