#include "util/csv_writer.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace deepdirect::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    fields.push_back(os.str());
  }
  WriteRow(fields);
}

void CsvWriter::Close() {
  if (out_.is_open()) out_.close();
}

std::string CsvWriter::Escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

Status EnsureDirectory(const std::string& path) {
  if (mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IOError("mkdir(" + path + "): " + std::strerror(errno));
}

}  // namespace deepdirect::util
