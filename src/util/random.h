// Deterministic pseudo-random number generation.
//
// Every stochastic component in this library takes an explicit seed and uses
// these generators, so all experiments are reproducible bit-for-bit.
// Xoshiro256** is the workhorse generator (fast, high quality); SplitMix64
// seeds it and is exposed for cheap hashing-style use.

#ifndef DEEPDIRECT_UTIL_RANDOM_H_
#define DEEPDIRECT_UTIL_RANDOM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace deepdirect::util {

/// SplitMix64: a tiny, statistically solid 64-bit generator. Primarily used
/// to expand a single user seed into the Xoshiro256** state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: the library-wide PRNG. Satisfies the needs of Monte-Carlo
/// style sampling in embeddings and generators; not cryptographic.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit seed.
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  /// Returns the next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's nearly-divisionless method.
  uint64_t NextBounded(uint64_t bound) {
    DD_CHECK_GT(bound, 0u);
    // 128-bit multiply-shift; the modulo bias is negligible for the bounds
    // used here (graph sizes << 2^64) and retried away below.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = (0ULL - bound) % bound;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform index in [0, n) as size_t.
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextBounded(n)); }

  /// Uniform double in [lo, hi).
  double NextDoubleIn(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (no caching of the second variate; kept
  /// simple because normal draws are not on the hot path).
  double NextGaussian();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (reservoir-free selection sampling; O(n) when k ~ n, rejection when
  /// k << n). Order of the returned indices is unspecified.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Snapshot of the generator state, for checkpointing. Restoring it with
  /// set_state() continues the stream exactly where the snapshot was taken.
  std::array<uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Restores a state captured by state().
  void set_state(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace deepdirect::util

#endif  // DEEPDIRECT_UTIL_RANDOM_H_
