#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace deepdirect::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DD_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::string& label,
                                 const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace deepdirect::util
