// CSV emission for figure-reproduction benches. Each bench prints a table to
// stdout and mirrors it to a CSV under bench_results/ for plotting.

#ifndef DEEPDIRECT_UTIL_CSV_WRITER_H_
#define DEEPDIRECT_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace deepdirect::util {

/// Streams rows of a CSV file. Fields containing separators or quotes are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncating). Check ok() before use.
  explicit CsvWriter(const std::string& path);

  /// Whether the underlying file opened successfully.
  bool ok() const { return out_.good(); }

  /// Writes one row. Values are escaped as needed.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with the given precision.
  void WriteNumericRow(const std::string& label,
                       const std::vector<double>& values, int precision = 6);

  /// Flushes and closes. Called by the destructor as well.
  void Close();

 private:
  static std::string Escape(const std::string& field);

  std::ofstream out_;
};

/// Creates the directory `path` (single level) if it does not exist.
/// Returns OK when the directory exists afterwards.
Status EnsureDirectory(const std::string& path);

}  // namespace deepdirect::util

#endif  // DEEPDIRECT_UTIL_CSV_WRITER_H_
