#include "util/random.h"

#include <cmath>
#include <unordered_set>

namespace deepdirect::util {

double Rng::NextGaussian() {
  // Box-Muller transform. NextDouble() can return exactly 0, which would
  // make log() blow up, so nudge it away from zero.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DD_CHECK_LE(k, n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + NextIndex(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling into a hash set.
  std::unordered_set<size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    size_t candidate = NextIndex(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace deepdirect::util
