#include "util/alias_table.h"

#include <limits>

#include "util/check.h"

namespace deepdirect::util {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  DD_CHECK_GT(n, 0u);
  DD_CHECK_LE(n, static_cast<size_t>(std::numeric_limits<uint32_t>::max()));

  double total = 0.0;
  for (double w : weights) {
    DD_CHECK_GE(w, 0.0);
    total += w;
  }
  DD_CHECK_GT(total, 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; buckets with scaled < 1 are "small".
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * n;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to floating error.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t bucket = rng.NextIndex(prob_.size());
  return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::Probability(size_t i) const {
  DD_CHECK_LT(i, normalized_.size());
  return normalized_[i];
}

}  // namespace deepdirect::util
