#include "util/status.h"

namespace deepdirect::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace deepdirect::util
