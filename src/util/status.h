// Status / Result<T>: lightweight error propagation for fallible operations
// at the library boundary (file I/O, user-supplied configuration).
//
// Programmer errors use DD_CHECK (check.h); recoverable errors — bad input
// files, invalid parameters from callers — return Status or Result<T>.

#ifndef DEEPDIRECT_UTIL_STATUS_H_
#define DEEPDIRECT_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace deepdirect::util {

/// Error categories for Status. Coarse by design: callers branch on
/// ok()/code, humans read the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kInternal,
  kResourceExhausted,
};

/// Returns a short human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// The result of a fallible operation that produces no value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// The result of a fallible operation that produces a T on success.
///
/// Result is either a value or an error Status; accessing the value of an
/// errored Result is a checked programmer error.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design

  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    DD_CHECK(!std::get<Status>(state_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Returns the error status (OK if the result holds a value).
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(state_);
  }

  /// Returns the contained value. Checked: the result must be ok().
  const T& value() const& {
    DD_CHECK_MSG(ok(), "Result accessed in error state: "
                           << std::get<Status>(state_).ToString());
    return std::get<T>(state_);
  }
  T& value() & {
    DD_CHECK_MSG(ok(), "Result accessed in error state: "
                           << std::get<Status>(state_).ToString());
    return std::get<T>(state_);
  }
  T&& value() && {
    DD_CHECK_MSG(ok(), "Result accessed in error state: "
                           << std::get<Status>(state_).ToString());
    return std::get<T>(std::move(state_));
  }

  /// Returns the value or `fallback` if errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

/// Propagates a non-OK Status to the caller.
#define DD_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::deepdirect::util::Status dd_status_ = (expr); \
    if (!dd_status_.ok()) return dd_status_;  \
  } while (0)

}  // namespace deepdirect::util

#endif  // DEEPDIRECT_UTIL_STATUS_H_
