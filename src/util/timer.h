// Wall-clock timing for the scalability experiment (Fig. 9) and benches.

#ifndef DEEPDIRECT_UTIL_TIMER_H_
#define DEEPDIRECT_UTIL_TIMER_H_

#include <chrono>

namespace deepdirect::util {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deepdirect::util

#endif  // DEEPDIRECT_UTIL_TIMER_H_
