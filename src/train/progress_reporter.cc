#include "train/progress_reporter.h"

#include "obs/metrics.h"

namespace deepdirect::train {

ProgressReporter::ProgressReporter(ProgressCallback callback,
                                   uint64_t report_every, uint64_t total,
                                   uint64_t step_offset,
                                   std::string metrics_prefix)
    : callback_(std::move(callback)),
      loss_series_(obs::Enabled() && !metrics_prefix.empty()
                       ? metrics_prefix + ".loss"
                       : ""),
      report_every_(report_every == 0 ? 1 : report_every),
      total_(total),
      step_offset_(step_offset) {}

void ProgressReporter::Record(uint64_t steps, double loss_sum) {
  const uint64_t processed =
      processed_.fetch_add(steps, std::memory_order_relaxed) + steps;
  if (!callback_ && loss_series_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  window_steps_ += steps;
  window_loss_ += loss_sum;
  if (window_steps_ >= report_every_ || step_offset_ + processed == total_) {
    if (window_steps_ > 0) {
      const double mean_loss =
          window_loss_ / static_cast<double>(window_steps_);
      if (callback_) callback_(step_offset_ + processed, total_, mean_loss);
      if (!loss_series_.empty()) {
        obs::Registry::Default().Append(loss_series_, mean_loss);
      }
    }
    window_steps_ = 0;
    window_loss_ = 0.0;
  }
}

double ProgressReporter::StepsPerSec() const {
  const double elapsed = timer_.ElapsedSeconds();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(processed()) / elapsed;
}

}  // namespace deepdirect::train
