// Learning-rate schedules shared by every SGD trainer.
//
// The repo's trainers all decay the learning rate linearly over the step
// budget, in one of two historical forms:
//   * clamped       — lr(t) = initial · max(min_fraction, 1 − t/T)
//                     (word2vec convention; skip-gram, LINE, DeepDirect)
//   * interpolated  — lr(t) = initial · (1 − (1 − min_fraction) · t/T)
//                     (logistic regression, MLP, autoencoder, ReDirect)
// Both end at initial · min_fraction; the clamped form flattens once the
// floor is reached while the interpolated form keeps decaying to it exactly
// at t = T. The formulas are kept verbatim so migrated trainers reproduce
// their historical float streams bit-for-bit.

#ifndef DEEPDIRECT_TRAIN_LR_SCHEDULE_H_
#define DEEPDIRECT_TRAIN_LR_SCHEDULE_H_

#include <algorithm>
#include <cstdint>

namespace deepdirect::train {

/// Linear learning-rate decay over a global step budget.
struct LrSchedule {
  enum class Decay {
    kClampedLinear = 0,       ///< initial · max(min_fraction, 1 − progress)
    kInterpolatedLinear = 1,  ///< initial · (1 − (1 − min_fraction)·progress)
  };

  double initial = 0.05;
  double min_fraction = 0.01;
  Decay decay = Decay::kClampedLinear;

  /// Learning rate at global step `step` of a `total`-step budget.
  double At(uint64_t step, uint64_t total) const {
    if (total == 0) return initial;
    const double progress =
        static_cast<double>(step) / static_cast<double>(total);
    if (decay == Decay::kClampedLinear) {
      return initial * std::max(min_fraction, 1.0 - progress);
    }
    return initial * (1.0 - (1.0 - min_fraction) * progress);
  }
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_LR_SCHEDULE_H_
