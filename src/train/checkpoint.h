// Crash-safe checkpoint/resume for the SGD training engine.
//
// A checkpoint is a versioned, sectioned binary container: every section is
// a (name, payload) pair protected by a CRC32 over its serialized bytes,
// the header carries its own CRC, and the file ends in a footer magic. The
// container is written atomically — serialized to a temp file in the target
// directory, flushed, fsync'ed, renamed over the destination, directory
// fsync'ed — so a crash at any byte leaves either the old file or the new
// one, never a truncated hybrid. Readers validate everything before
// exposing any byte: any truncation or bit flip yields a Status error
// anchored to the failing offset or section, never a crash or a
// silently-wrong parse.
//
// On top of the container, Checkpointer snapshots SGD state at epoch
// boundaries: the engine-owned part (epoch/step counters, run shape, the
// trainer's serial Rng stream) plus trainer-owned sections (parameter
// matrices) contributed through a save callback. The resume contract:
//   * num_threads = 1 — restoring the newest checkpoint and finishing the
//     budget is bit-identical to the uninterrupted run (the serial Rng
//     stream is part of the snapshot);
//   * num_threads > 1 — the run restarts cleanly from the last epoch
//     boundary; per-epoch worker streams are derived from (shard_seed,
//     epoch), so the resumed epochs sample identically to the
//     uninterrupted run and only the Hogwild update interleaving differs.
//
// Layout (version 1, host-endian):
//   magic (4 bytes) | u32 version | u64 section_count | u32 header_crc
//   per section: u32 name_size | name | u64 payload_size | payload |
//                u32 section_crc   (CRC32 over the section's own bytes)
//   footer magic "DDEN"

#ifndef DEEPDIRECT_TRAIN_CHECKPOINT_H_
#define DEEPDIRECT_TRAIN_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "train/lr_schedule.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace deepdirect::train {

/// Container magic of SGD checkpoints. Other artifacts reuse the container
/// with their own magic (the model format uses "DDM2").
inline constexpr std::array<char, 4> kCheckpointMagic{'D', 'D', 'C', 'K'};

/// CRC32 (IEEE 802.3, reflected 0xEDB88320) of `size` bytes at `data`.
uint32_t Crc32(const void* data, size_t size);

/// Incremental CRC32: feed `Crc32Update` successive chunks starting from 0.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

/// Atomically replaces `path` with `bytes`: writes `path`.tmp in the same
/// directory, flushes and fsyncs it, renames it over `path`, and fsyncs the
/// directory. A crash at any point leaves either the old file or the new
/// one.
util::Status AtomicWriteFile(const std::string& path,
                             std::string_view bytes);

/// Builds one checkpoint container section by section.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::array<char, 4> magic = kCheckpointMagic)
      : magic_(magic) {}

  /// Appends a raw section. Names must be unique, non-empty, < 256 bytes.
  void AddSection(std::string_view name, const void* data, size_t size);

  /// Appends a trivially-copyable value as a section.
  template <typename T>
  void AddPod(std::string_view name, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddSection(name, &value, sizeof(T));
  }

  /// Appends a vector of trivially-copyable elements as a section.
  template <typename T>
  void AddVector(std::string_view name, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    AddSection(name, values.data(), values.size() * sizeof(T));
  }

  /// Serializes the container (header, sections with CRCs, footer).
  std::string Serialize() const;

  /// Serializes and writes atomically to `path` (see AtomicWriteFile).
  util::Status WriteAtomic(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::array<char, 4> magic_;
  std::vector<Section> sections_;
};

/// A parsed, fully CRC-validated checkpoint container.
class CheckpointData {
 public:
  /// Parses and validates `bytes`; `origin` labels error messages (usually
  /// the path). Every structural defect — wrong magic or version, truncated
  /// header or section, CRC mismatch, duplicate section, trailing bytes —
  /// returns InvalidArgument naming the byte offset or section.
  static util::Result<CheckpointData> Parse(
      std::string bytes, const std::string& origin,
      std::array<char, 4> magic = kCheckpointMagic);

  /// Reads `path` and parses it. Unreadable files return IOError.
  static util::Result<CheckpointData> Read(
      const std::string& path,
      std::array<char, 4> magic = kCheckpointMagic);

  bool Has(std::string_view name) const {
    return sections_.contains(std::string(name));
  }

  /// Raw bytes of a section; NotFound when absent.
  util::Result<std::string_view> Section(std::string_view name) const;

  /// Copies a section into a trivially-copyable value; the section size
  /// must match exactly.
  template <typename T>
  util::Status ReadPod(std::string_view name, T* out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto section = Section(name);
    if (!section.ok()) return section.status();
    if (section.value().size() != sizeof(T)) {
      return SizeMismatch(name, sizeof(T), section.value().size());
    }
    std::memcpy(out, section.value().data(), sizeof(T));
    return util::Status::OK();
  }

  /// Copies a section into a vector of trivially-copyable elements. When
  /// `expected_count` is non-zero the element count must match it exactly;
  /// either way the byte size must be a whole number of elements.
  template <typename T>
  util::Status ReadVector(std::string_view name, std::vector<T>* out,
                          size_t expected_count = 0) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto section = Section(name);
    if (!section.ok()) return section.status();
    const std::string_view bytes = section.value();
    if (bytes.size() % sizeof(T) != 0) {
      return SizeMismatch(name, expected_count * sizeof(T), bytes.size());
    }
    const size_t count = bytes.size() / sizeof(T);
    if (expected_count != 0 && count != expected_count) {
      return SizeMismatch(name, expected_count * sizeof(T), bytes.size());
    }
    out->resize(count);
    std::memcpy(out->data(), bytes.data(), bytes.size());
    return util::Status::OK();
  }

 private:
  explicit CheckpointData(std::string bytes, std::string origin)
      : bytes_(std::move(bytes)), origin_(std::move(origin)) {}

  util::Status SizeMismatch(std::string_view name, size_t expected,
                            size_t got) const;

  std::string bytes_;
  std::string origin_;
  /// Section name → (offset, size) into bytes_.
  std::map<std::string, std::pair<size_t, size_t>, std::less<>> sections_;
};

/// When and how many checkpoints to keep.
struct CheckpointPolicy {
  /// Write after every N completed epochs; 0 disables the epoch trigger.
  uint64_t every_n_epochs = 1;
  /// Additionally write at the first epoch boundary after T seconds have
  /// elapsed since the last write; 0 disables the time trigger.
  double every_seconds = 0.0;
  /// Keep only the newest K checkpoints of this trainer (older ones are
  /// pruned after each write); 0 keeps all.
  size_t keep_last = 3;
  /// Also write at the final epoch boundary. Off by default (a completed
  /// run needs no resume point), but required by warm-start consumers —
  /// incremental tie-batch updates (train/incremental.h) read the *final*
  /// E-step state, not the one-epoch-short snapshot resume needs.
  bool write_final = false;

  /// True when either trigger can fire.
  bool Active() const { return every_n_epochs > 0 || every_seconds > 0.0; }
};

/// Per-trainer checkpoint configuration carried in trainer configs.
struct CheckpointOptions {
  /// Directory for checkpoint files; empty disables checkpointing and
  /// resume entirely. Created on first write.
  std::string dir;
  /// Tag identifying the trainer (e.g. "deepdirect.estep"); embedded in
  /// file names and in the container, so several trainers can share a dir.
  std::string trainer;
  CheckpointPolicy policy;
  /// Scan `dir` for the newest valid checkpoint of this trainer before
  /// training and resume from it.
  bool resume = false;
  /// Simulated preemption for tests: cleanly stop the run after this many
  /// epoch boundaries have been crossed in this process (0 = off). The
  /// trainer observes the stop via Checkpointer::stopped().
  uint64_t stop_after_epochs = 0;
};

/// Epoch-boundary context handed to epoch hooks and the Checkpointer.
struct EpochEnd {
  uint64_t epoch;      ///< 0-based global epoch index just completed
  uint64_t next_step;  ///< global step index where the next epoch starts
  double loss;         ///< loss sum over the completed epoch
  bool last;           ///< no further steps remain in the budget
};

/// The run geometry a checkpoint must match to be resumable: resuming under
/// a different budget, epoch size, shard seed, or LR schedule would
/// silently break the determinism contract, so mismatches are rejected.
struct RunShape {
  uint64_t total_steps = 0;
  uint64_t steps_per_epoch = 0;
  uint64_t shard_seed = 0;
  LrSchedule lr;
};

/// Orchestrates checkpoint writes at epoch boundaries and resume scans.
///
/// The trainer contributes its parameter state through the save callback
/// (sections added to the writer) and restores it through the load
/// callback. The load callback MUST be atomic: read every section into
/// locals (ReadVector/ReadPod validate sizes), commit only after all reads
/// succeeded — a failed load may be retried against an older checkpoint.
/// Section names "meta", "trainer", and "rng" are reserved for the engine.
class Checkpointer {
 public:
  using SaveFn = std::function<void(CheckpointWriter&)>;
  using LoadFn = std::function<util::Status(const CheckpointData&)>;

  Checkpointer(CheckpointOptions options, RunShape shape, SaveFn save_state,
               LoadFn load_state);

  /// True when checkpoints will be written.
  bool enabled() const {
    return !options_.dir.empty() && options_.policy.Active();
  }

  /// Scans the directory for the newest valid checkpoint of this trainer,
  /// restores trainer state (load callback) and the serial Rng stream, and
  /// returns the number of epochs already completed (0 = start fresh).
  /// Corrupt or mismatched candidates are skipped with a warning on
  /// stderr; they never abort the run. No-op unless options.resume is set.
  uint64_t Resume(util::Rng& rng);

  /// Engine hook: called by SgdDriver after every completed epoch, with
  /// all workers quiesced. Writes a checkpoint when the policy fires.
  /// Returns true when the run must stop (simulated preemption).
  bool AtEpochBoundary(const EpochEnd& end, const util::Rng& rng);

  /// True once a simulated preemption stopped the run; trainers should
  /// skip dependent phases (the process would not have reached them).
  bool stopped() const { return stopped_; }

  /// This trainer's checkpoint paths, newest (highest epoch) first.
  std::vector<std::string> ListCheckpoints() const;

  /// The path a checkpoint for `epochs_done` completed epochs is written
  /// to. Exposed for tests.
  std::string PathFor(uint64_t epochs_done) const;

 private:
  void Write(const EpochEnd& end, const util::Rng& rng);
  void Prune() const;

  CheckpointOptions options_;
  RunShape shape_;
  SaveFn save_;
  LoadFn load_;
  uint64_t epochs_this_run_ = 0;
  bool stopped_ = false;
  util::Timer since_last_write_;
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_CHECKPOINT_H_
