#include "train/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace deepdirect::train {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareConcurrency();
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    DD_CHECK(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

size_t ThreadPool::HardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace deepdirect::train
