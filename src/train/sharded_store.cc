#include "train/sharded_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <filesystem>

#include "train/checkpoint.h"
#include "util/check.h"

namespace deepdirect::train {

namespace fmt = graph::shard;

namespace {

util::Status Defect(const std::string& path, const std::string& what) {
  return util::Status::InvalidArgument("shard store: " + path + ": " + what);
}

util::Status EnsureDir(const std::string& dir) {
  // Parents included: a nested --shard-dir must not require pre-creation.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (!ec) return util::Status::OK();
  return util::Status::IOError("cannot create directory " + dir + ": " +
                               ec.message());
}

/// Resolved layout of one container file: canonical offsets for the given
/// payload sizes, in table order.
struct Layout {
  std::vector<uint64_t> offsets;
  std::vector<uint64_t> sizes;
  uint64_t file_size = 0;
};

Layout ComputeLayout(std::span<const uint64_t> sizes) {
  Layout layout;
  layout.sizes.assign(sizes.begin(), sizes.end());
  layout.offsets.resize(sizes.size());
  uint64_t cursor = fmt::TableEnd(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    layout.offsets[i] = fmt::AlignUp(cursor);
    cursor = layout.offsets[i] + sizes[i];
  }
  layout.file_size = cursor;
  return layout;
}

/// Writes the header (with the given flags) and the section table into
/// `base`. Payloads must already be in place when `with_crcs` is set; the
/// meta CRC is always stamped last, over the header+table bytes with the
/// field zeroed.
void WriteHeaderAndTable(unsigned char* base, const Layout& layout,
                         const char* const* order, uint32_t flags,
                         bool with_crcs) {
  fmt::Header header{};
  std::memcpy(header.magic, fmt::kMagic.data(), fmt::kMagic.size());
  header.version = fmt::kVersion;
  header.section_count = layout.sizes.size();
  header.file_size = layout.file_size;
  header.meta_crc = 0;
  header.flags = flags;
  std::memcpy(base, &header, sizeof(header));
  for (size_t i = 0; i < layout.sizes.size(); ++i) {
    fmt::SectionEntry entry{};
    std::strncpy(entry.name, order[i], fmt::kSectionNameSize - 1);
    entry.offset = layout.offsets[i];
    entry.size = layout.sizes[i];
    entry.crc =
        with_crcs ? Crc32(base + layout.offsets[i], layout.sizes[i]) : 0;
    entry.reserved = 0;
    std::memcpy(base + sizeof(fmt::Header) + i * sizeof(entry), &entry,
                sizeof(entry));
  }
  const uint64_t table_end = fmt::TableEnd(layout.sizes.size());
  const uint32_t meta_crc = Crc32(base, table_end);
  std::memcpy(base + offsetof(fmt::Header, meta_crc), &meta_crc,
              sizeof(meta_crc));
}

struct SectionRange {
  uint64_t offset = 0;
  uint64_t size = 0;
};

/// The DDS1 every-byte validation contract, applied to a DDSH container:
/// header sanity + sealed flag, meta CRC over header+table, per-entry
/// name/order/canonical-offset/reserved/CRC checks, no trailing bytes,
/// and zero alignment padding. Section sizes are checked by the caller
/// once the meta payload is parsed.
util::Status ValidateContainer(const unsigned char* base, uint64_t file_size,
                               const char* const* order, uint64_t count,
                               const std::string& path,
                               std::vector<SectionRange>* ranges) {
  if (file_size < sizeof(fmt::Header)) {
    return Defect(path, "file too small for a DDSH header (" +
                            std::to_string(file_size) + " bytes)");
  }
  fmt::Header header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, fmt::kMagic.data(), fmt::kMagic.size()) != 0) {
    return Defect(path, "bad magic (not a DDSH file)");
  }
  if (header.version != fmt::kVersion) {
    return Defect(path,
                  "unsupported version " + std::to_string(header.version));
  }
  if ((header.flags & fmt::kFlagSealed) == 0) {
    return Defect(path, "file is not sealed (crashed or live training run)");
  }
  if ((header.flags & ~fmt::kFlagSealed) != 0) {
    return Defect(path, "unknown header flags");
  }
  if (header.file_size != file_size) {
    return Defect(path, "header file_size " +
                            std::to_string(header.file_size) +
                            " != actual size " + std::to_string(file_size));
  }
  if (header.section_count != count) {
    return Defect(path, "expected " + std::to_string(count) +
                            " sections, found " +
                            std::to_string(header.section_count));
  }
  const uint64_t table_end = fmt::TableEnd(count);
  if (file_size < table_end) {
    return Defect(path, "file too small for the section table");
  }
  std::vector<unsigned char> prefix(base, base + table_end);
  std::memset(prefix.data() + offsetof(fmt::Header, meta_crc), 0,
              sizeof(uint32_t));
  if (Crc32(prefix.data(), prefix.size()) != header.meta_crc) {
    return Defect(path, "header/table CRC mismatch");
  }

  ranges->assign(count, {});
  uint64_t cursor = table_end;
  for (uint64_t i = 0; i < count; ++i) {
    fmt::SectionEntry entry;
    std::memcpy(&entry, base + sizeof(fmt::Header) + i * sizeof(entry),
                sizeof(entry));
    const size_t len = strnlen(entry.name, fmt::kSectionNameSize);
    if (len == fmt::kSectionNameSize || std::strcmp(entry.name, order[i]) != 0) {
      return Defect(path, "section " + std::to_string(i) + " is not '" +
                              order[i] + "'");
    }
    for (size_t b = len; b < fmt::kSectionNameSize; ++b) {
      if (entry.name[b] != '\0') {
        return Defect(path, "section name not NUL-padded");
      }
    }
    if (entry.reserved != 0) {
      return Defect(path, "nonzero reserved word in section '" +
                              std::string(order[i]) + "'");
    }
    const uint64_t canonical = fmt::AlignUp(cursor);
    if (entry.offset != canonical) {
      return Defect(path, "section '" + std::string(order[i]) +
                              "' at non-canonical offset");
    }
    if (entry.size > file_size || entry.offset > file_size - entry.size) {
      return Defect(path, "section '" + std::string(order[i]) +
                              "' extends past end of file");
    }
    if (Crc32(base + entry.offset, entry.size) != entry.crc) {
      return Defect(path, "section '" + std::string(order[i]) +
                              "' payload CRC mismatch");
    }
    (*ranges)[i] = {entry.offset, entry.size};
    cursor = entry.offset + entry.size;
  }
  if (cursor != file_size) {
    return Defect(path, "trailing bytes after the last section");
  }
  // Alignment padding gaps must read as zeros — corruption there would
  // otherwise be invisible to every CRC.
  cursor = table_end;
  for (uint64_t i = 0; i < count; ++i) {
    for (uint64_t b = cursor; b < (*ranges)[i].offset; ++b) {
      if (base[b] != 0) {
        return Defect(path,
                      "nonzero padding byte at offset " + std::to_string(b));
      }
    }
    cursor = (*ranges)[i].offset + (*ranges)[i].size;
  }
  return util::Status::OK();
}

/// Expected per-section payload sizes of a graph file with this meta.
std::vector<uint64_t> GraphSectionSizes(const fmt::GraphMeta& meta) {
  return {sizeof(fmt::GraphMeta), (meta.num_nodes + 1) * sizeof(uint64_t),
          meta.num_arcs * sizeof(uint32_t), meta.num_arcs * sizeof(uint32_t),
          meta.num_arcs * sizeof(uint8_t)};
}

/// Expected per-section payload sizes of a shard file with this meta.
std::vector<uint64_t> ShardSectionSizes(const fmt::ShardMeta& meta) {
  const uint64_t arcs = meta.arc_end - meta.arc_begin;
  return {sizeof(fmt::ShardMeta),
          arcs * sizeof(uint32_t),
          meta.num_slots * sizeof(double),
          meta.num_slots * sizeof(uint8_t),
          meta.num_slots == 0 ? 0 : (meta.num_slots + 1) * sizeof(uint32_t),
          meta.num_triad_pairs * sizeof(fmt::TriadPair),
          arcs * meta.dimensions * sizeof(float),
          arcs * meta.dimensions * sizeof(float)};
}

}  // namespace

util::Result<std::unique_ptr<ShardedStore>> ShardedStore::Create(
    const ShardedStoreOptions& options, const ShardedStoreInit& init,
    util::Rng& rng, float init_lo, float init_hi) {
  const size_t num_arcs = init.adjacency.size();
  DD_CHECK_GT(num_arcs, 0u);
  DD_CHECK_GT(options.num_shards, 0u);
  DD_CHECK_LE(options.num_shards, num_arcs);
  DD_CHECK_GT(init.dimensions, 0u);
  DD_CHECK_EQ(init.sources.size(), num_arcs);
  DD_CHECK_EQ(init.classes.size(), num_arcs);
  DD_CHECK_EQ(init.slot.size(), num_arcs);
  DD_CHECK_EQ(init.degree_pseudo_label.size(), init.degree_active.size());
  DD_CHECK_EQ(init.triad_offsets.size(), init.degree_pseudo_label.size() + 1);
  DD_RETURN_NOT_OK(EnsureDir(options.dir));

  std::unique_ptr<ShardedStore> store(new ShardedStore());
  store->dir_ = options.dir;
  store->budget_bytes_ =
      static_cast<uint64_t>(options.ram_budget_mb) * 1024 * 1024;

  fmt::GraphMeta meta{};
  meta.kind = fmt::kGraphKind;
  meta.num_nodes = init.offsets.size() - 1;
  meta.num_arcs = num_arcs;
  meta.dimensions = init.dimensions;
  meta.num_shards = options.num_shards;
  meta.num_connected_pairs = init.num_connected_pairs;
  meta.arc_hash = init.arc_hash;
  store->meta_ = meta;
  store->arcs_per_shard_ =
      (num_arcs + options.num_shards - 1) / options.num_shards;

  // --- Graph file: built in memory, written atomically, sealed at birth.
  const std::string graph_path = options.dir + "/" + fmt::GraphFileName();
  {
    const std::vector<uint64_t> sizes = GraphSectionSizes(meta);
    const Layout layout = ComputeLayout(sizes);
    std::vector<unsigned char> image(layout.file_size, 0);
    std::memcpy(image.data() + layout.offsets[0], &meta, sizeof(meta));
    uint64_t* offsets_out =
        reinterpret_cast<uint64_t*>(image.data() + layout.offsets[1]);
    for (size_t i = 0; i < init.offsets.size(); ++i) {
      offsets_out[i] = init.offsets[i];
    }
    std::memcpy(image.data() + layout.offsets[2], init.adjacency.data(),
                sizes[2]);
    std::memcpy(image.data() + layout.offsets[3], init.sources.data(),
                sizes[3]);
    std::memcpy(image.data() + layout.offsets[4], init.classes.data(),
                sizes[4]);
    WriteHeaderAndTable(image.data(), layout, fmt::kGraphSectionOrder,
                        fmt::kFlagSealed, /*with_crcs=*/true);
    DD_RETURN_NOT_OK(AtomicWriteFile(
        graph_path, std::string_view(
                        reinterpret_cast<const char*>(image.data()),
                        image.size())));
  }
  {
    auto mapped = serve::MmapFile::Open(graph_path, serve::MmapAdvice::kRandom);
    if (!mapped.ok()) return mapped.status();
    store->graph_file_ = std::move(mapped).value();
    std::vector<SectionRange> ranges;
    const auto* base =
        static_cast<const unsigned char*>(store->graph_file_.data());
    DD_RETURN_NOT_OK(ValidateContainer(base, store->graph_file_.size(),
                                       fmt::kGraphSectionOrder,
                                       fmt::kGraphSectionCount, graph_path,
                                       &ranges));
    store->offsets_ =
        reinterpret_cast<const uint64_t*>(base + ranges[1].offset);
    store->adj_ = reinterpret_cast<const uint32_t*>(base + ranges[2].offset);
    store->src_ = reinterpret_cast<const uint32_t*>(base + ranges[3].offset);
    store->classes_ = base + ranges[4].offset;
  }

  // --- Shard files: pattern arena partitioned by owning arc range, emb
  // filled from `rng` in global row-major arc order (shards are laid out
  // in arc order, so sequential per-shard fills consume the exact draw
  // sequence of ml::Matrix::FillUniform on the whole matrix).
  store->shards_.reset(new Shard[options.num_shards]);
  for (size_t s = 0; s < options.num_shards; ++s) {
    const uint64_t arc_begin = s * store->arcs_per_shard_;
    const uint64_t arc_end =
        std::min<uint64_t>(num_arcs, (s + 1) * store->arcs_per_shard_);
    const uint64_t arc_count = arc_end - arc_begin;

    // Gather this shard's pattern subset with re-numbered local slots.
    std::vector<uint32_t> local_slot(arc_count, UINT32_MAX);
    std::vector<double> local_label;
    std::vector<uint8_t> local_active;
    std::vector<uint32_t> local_triad_off;
    std::vector<fmt::TriadPair> local_pairs;
    for (uint64_t e = arc_begin; e < arc_end; ++e) {
      const uint32_t g = init.slot[e];
      if (g == UINT32_MAX) continue;
      local_slot[e - arc_begin] = static_cast<uint32_t>(local_label.size());
      local_label.push_back(init.degree_pseudo_label[g]);
      local_active.push_back(init.degree_active[g]);
      local_triad_off.push_back(static_cast<uint32_t>(local_pairs.size()));
      for (uint32_t t = init.triad_offsets[g]; t < init.triad_offsets[g + 1];
           ++t) {
        local_pairs.push_back(init.triad_pairs[t]);
      }
    }
    if (!local_label.empty()) {
      local_triad_off.push_back(static_cast<uint32_t>(local_pairs.size()));
    }

    fmt::ShardMeta smeta{};
    smeta.kind = fmt::kShardKind;
    smeta.shard_index = s;
    smeta.arc_begin = arc_begin;
    smeta.arc_end = arc_end;
    smeta.dimensions = init.dimensions;
    smeta.num_slots = local_label.size();
    smeta.num_triad_pairs = local_pairs.size();
    smeta.arc_hash = init.arc_hash;

    const std::vector<uint64_t> sizes = ShardSectionSizes(smeta);
    const Layout layout = ComputeLayout(sizes);
    const std::string path =
        options.dir + "/" + fmt::ShardFileName(s);
    auto mapped = serve::MmapRwFile::Create(path, layout.file_size,
                                            serve::MmapAdvice::kRandom);
    if (!mapped.ok()) return mapped.status();
    serve::MmapRwFile file = std::move(mapped).value();
    auto* base = static_cast<unsigned char*>(file.data());
    const auto put = [&](size_t i, const void* data) {
      if (sizes[i] > 0) std::memcpy(base + layout.offsets[i], data, sizes[i]);
    };
    std::memcpy(base + layout.offsets[0], &smeta, sizeof(smeta));
    put(1, local_slot.data());
    put(2, local_label.data());
    put(3, local_active.data());
    put(4, local_triad_off.data());
    put(5, local_pairs.data());
    float* emb = reinterpret_cast<float*>(base + layout.offsets[6]);
    const uint64_t values = arc_count * init.dimensions;
    for (uint64_t i = 0; i < values; ++i) {
      emb[i] = static_cast<float>(rng.NextDoubleIn(init_lo, init_hi));
    }
    // conn stays zero (the file is a sparse hole).
    WriteHeaderAndTable(base, layout, fmt::kShardSectionOrder, /*flags=*/0,
                        /*with_crcs=*/false);

    Shard& shard = store->shards_[s];
    shard.file = std::move(file);
    shard.arc_begin = arc_begin;
    shard.arc_end = arc_end;
    shard.num_slots = smeta.num_slots;
    base = static_cast<unsigned char*>(shard.file.data());
    shard.slot = reinterpret_cast<const uint32_t*>(base + layout.offsets[1]);
    shard.label = reinterpret_cast<const double*>(base + layout.offsets[2]);
    shard.active = base + layout.offsets[3];
    shard.triad_off =
        reinterpret_cast<const uint32_t*>(base + layout.offsets[4]);
    shard.triad_pairs =
        reinterpret_cast<const fmt::TriadPair*>(base + layout.offsets[5]);
    shard.emb = reinterpret_cast<float*>(base + layout.offsets[6]);
    shard.conn = reinterpret_cast<float*>(base + layout.offsets[7]);
    shard.evict_offset = layout.offsets[6];
    shard.evict_bytes = layout.file_size - layout.offsets[6];
    // Creation touched every emb page; start training with nothing
    // resident so admission accounting sees the true working set.
    shard.file.DropResident(shard.evict_offset, shard.evict_bytes);
  }
  return store;
}

util::Result<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& dir, size_t ram_budget_mb) {
  std::unique_ptr<ShardedStore> store(new ShardedStore());
  store->dir_ = dir;
  store->budget_bytes_ = static_cast<uint64_t>(ram_budget_mb) * 1024 * 1024;

  const std::string graph_path = dir + "/" + fmt::GraphFileName();
  auto mapped = serve::MmapFile::Open(graph_path, serve::MmapAdvice::kRandom);
  if (!mapped.ok()) return mapped.status();
  store->graph_file_ = std::move(mapped).value();
  const auto* base =
      static_cast<const unsigned char*>(store->graph_file_.data());
  std::vector<SectionRange> ranges;
  DD_RETURN_NOT_OK(ValidateContainer(base, store->graph_file_.size(),
                                     fmt::kGraphSectionOrder,
                                     fmt::kGraphSectionCount, graph_path,
                                     &ranges));
  fmt::GraphMeta meta;
  if (ranges[0].size != sizeof(meta)) {
    return Defect(graph_path, "meta section has the wrong size");
  }
  std::memcpy(&meta, base + ranges[0].offset, sizeof(meta));
  if (meta.kind != fmt::kGraphKind) {
    return Defect(graph_path, "meta kind is not a graph");
  }
  if (meta.reserved0 != 0) {
    return Defect(graph_path, "nonzero reserved meta field");
  }
  if (meta.num_arcs == 0 || meta.num_shards == 0 || meta.dimensions == 0 ||
      meta.num_shards > meta.num_arcs) {
    return Defect(graph_path, "degenerate meta geometry");
  }
  const std::vector<uint64_t> expected = GraphSectionSizes(meta);
  for (size_t i = 0; i < expected.size(); ++i) {
    if (ranges[i].size != expected[i]) {
      return Defect(graph_path,
                    std::string("section '") + fmt::kGraphSectionOrder[i] +
                        "' has the wrong size for the meta geometry");
    }
  }
  store->meta_ = meta;
  store->arcs_per_shard_ =
      (meta.num_arcs + meta.num_shards - 1) / meta.num_shards;
  store->offsets_ = reinterpret_cast<const uint64_t*>(base + ranges[1].offset);
  store->adj_ = reinterpret_cast<const uint32_t*>(base + ranges[2].offset);
  store->src_ = reinterpret_cast<const uint32_t*>(base + ranges[3].offset);
  store->classes_ = base + ranges[4].offset;
  // CSR sanity: offsets must be monotone and end at num_arcs, and every
  // adjacency entry must be a valid node — the store samples from these
  // without bounds checks on the hot path.
  if (store->offsets_[0] != 0 ||
      store->offsets_[meta.num_nodes] != meta.num_arcs) {
    return Defect(graph_path, "CSR offsets do not span the arc set");
  }
  for (uint64_t v = 0; v < meta.num_nodes; ++v) {
    if (store->offsets_[v] > store->offsets_[v + 1]) {
      return Defect(graph_path, "CSR offsets not monotone");
    }
  }
  for (uint64_t e = 0; e < meta.num_arcs; ++e) {
    if (store->adj_[e] >= meta.num_nodes || store->src_[e] >= meta.num_nodes) {
      return Defect(graph_path, "arc endpoint out of range");
    }
  }

  store->shards_.reset(new Shard[meta.num_shards]);
  for (size_t s = 0; s < meta.num_shards; ++s) {
    DD_RETURN_NOT_OK(store->AttachShard(s, dir + "/" + fmt::ShardFileName(s)));
  }
  return store;
}

util::Status ShardedStore::AttachShard(size_t index,
                                       const std::string& path) {
  auto mapped = serve::MmapRwFile::Open(path, serve::MmapAdvice::kRandom);
  if (!mapped.ok()) return mapped.status();
  serve::MmapRwFile file = std::move(mapped).value();
  auto* base = static_cast<unsigned char*>(file.data());
  std::vector<SectionRange> ranges;
  DD_RETURN_NOT_OK(ValidateContainer(base, file.size(),
                                     fmt::kShardSectionOrder,
                                     fmt::kShardSectionCount, path, &ranges));
  fmt::ShardMeta smeta;
  if (ranges[0].size != sizeof(smeta)) {
    return Defect(path, "meta section has the wrong size");
  }
  std::memcpy(&smeta, base + ranges[0].offset, sizeof(smeta));
  if (smeta.kind != fmt::kShardKind) {
    return Defect(path, "meta kind is not a shard");
  }
  if (smeta.shard_index != index) {
    return Defect(path, "shard index does not match its file name");
  }
  if (smeta.arc_hash != meta_.arc_hash ||
      smeta.dimensions != meta_.dimensions) {
    return Defect(path, "shard does not belong to this store's graph");
  }
  const uint64_t want_begin = index * arcs_per_shard_;
  const uint64_t want_end =
      std::min<uint64_t>(meta_.num_arcs, (index + 1) * arcs_per_shard_);
  if (smeta.arc_begin != want_begin || smeta.arc_end != want_end) {
    return Defect(path, "shard arc range disagrees with the partition");
  }
  const std::vector<uint64_t> expected = ShardSectionSizes(smeta);
  for (size_t i = 0; i < expected.size(); ++i) {
    if (ranges[i].size != expected[i]) {
      return Defect(path, std::string("section '") +
                              fmt::kShardSectionOrder[i] +
                              "' has the wrong size for the meta geometry");
    }
  }
  {
    // Local slots and triad CSR must stay in bounds — the training hot
    // path indexes through them unchecked.
    const auto* slot =
        reinterpret_cast<const uint32_t*>(base + ranges[1].offset);
    for (uint64_t e = 0; e < smeta.arc_end - smeta.arc_begin; ++e) {
      if (slot[e] != UINT32_MAX && slot[e] >= smeta.num_slots) {
        return Defect(path, "pattern slot out of range");
      }
    }
    if (smeta.num_slots > 0) {
      const auto* off =
          reinterpret_cast<const uint32_t*>(base + ranges[4].offset);
      if (off[0] != 0 || off[smeta.num_slots] != smeta.num_triad_pairs) {
        return Defect(path, "triad CSR does not span the pair arena");
      }
      for (uint64_t t = 0; t < smeta.num_slots; ++t) {
        if (off[t] > off[t + 1]) {
          return Defect(path, "triad CSR offsets not monotone");
        }
      }
      const auto* pairs =
          reinterpret_cast<const fmt::TriadPair*>(base + ranges[5].offset);
      for (uint64_t t = 0; t < smeta.num_triad_pairs; ++t) {
        if (pairs[t].first >= meta_.num_arcs ||
            pairs[t].second >= meta_.num_arcs) {
          return Defect(path, "triad pair arc index out of range");
        }
      }
    } else if (smeta.num_triad_pairs != 0) {
      return Defect(path, "triad pairs without pattern slots");
    }
  }

  Shard& shard = shards_[index];
  shard.file = std::move(file);
  base = static_cast<unsigned char*>(shard.file.data());
  shard.arc_begin = smeta.arc_begin;
  shard.arc_end = smeta.arc_end;
  shard.num_slots = smeta.num_slots;
  shard.slot = reinterpret_cast<const uint32_t*>(base + ranges[1].offset);
  shard.label = reinterpret_cast<const double*>(base + ranges[2].offset);
  shard.active = base + ranges[3].offset;
  shard.triad_off = reinterpret_cast<const uint32_t*>(base + ranges[4].offset);
  shard.triad_pairs =
      reinterpret_cast<const fmt::TriadPair*>(base + ranges[5].offset);
  shard.emb = reinterpret_cast<float*>(base + ranges[6].offset);
  shard.conn = reinterpret_cast<float*>(base + ranges[7].offset);
  shard.evict_offset = ranges[6].offset;
  shard.evict_bytes = shard.file.size() - ranges[6].offset;
  return util::Status::OK();
}

void ShardedStore::Admit(Shard& s) {
  std::lock_guard<std::mutex> lock(admit_mu_);
  if (s.resident.load(std::memory_order_acquire) != 0) return;  // raced
  const uint64_t incoming = s.evict_bytes;
  // Evict least-recently-used resident shards until the incoming shard
  // fits. The budget can never force the incoming shard itself out, so a
  // budget smaller than one shard degrades to exactly-one-resident.
  while (resident_bytes_ > 0 && resident_bytes_ + incoming > budget_bytes_) {
    Shard* victim = nullptr;
    uint64_t oldest = UINT64_MAX;
    for (size_t i = 0; i < meta_.num_shards; ++i) {
      Shard& candidate = shards_[i];
      if (&candidate == &s ||
          candidate.resident.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      const uint64_t t = candidate.last_use.load(std::memory_order_relaxed);
      if (t < oldest) {
        oldest = t;
        victim = &candidate;
      }
    }
    if (victim == nullptr) break;
    victim->resident.store(0, std::memory_order_release);
    victim->file.DropResident(victim->evict_offset, victim->evict_bytes);
    resident_bytes_ -= victim->evict_bytes;
    ++evictions_;
  }
  resident_bytes_ += incoming;
  max_resident_bytes_ = std::max(max_resident_bytes_, resident_bytes_);
  ++admissions_;
  s.last_use.store(tick_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  s.resident.store(1, std::memory_order_release);
}

util::Status ShardedStore::Seal() {
  for (size_t s = 0; s < meta_.num_shards; ++s) {
    Shard& shard = shards_[s];
    auto* base = static_cast<unsigned char*>(shard.file.data());
    // Sequential sweep for the CRC pass, back to random afterwards.
    shard.file.Advise(0, shard.file.size(), serve::MmapAdvice::kSequential);
    Layout layout;
    layout.offsets.resize(fmt::kShardSectionCount);
    layout.sizes.resize(fmt::kShardSectionCount);
    for (size_t i = 0; i < fmt::kShardSectionCount; ++i) {
      fmt::SectionEntry entry;
      std::memcpy(&entry, base + sizeof(fmt::Header) + i * sizeof(entry),
                  sizeof(entry));
      layout.offsets[i] = entry.offset;
      layout.sizes[i] = entry.size;
    }
    layout.file_size = shard.file.size();
    WriteHeaderAndTable(base, layout, fmt::kShardSectionOrder,
                        fmt::kFlagSealed, /*with_crcs=*/true);
    DD_RETURN_NOT_OK(shard.file.Sync());
    shard.file.Advise(0, shard.file.size(), serve::MmapAdvice::kRandom);
  }
  return util::Status::OK();
}

ShardedStore::Stats ShardedStore::GetStats() const {
  std::lock_guard<std::mutex> lock(admit_mu_);
  Stats stats;
  stats.admissions = admissions_;
  stats.evictions = evictions_;
  stats.resident_bytes = resident_bytes_;
  stats.max_resident_bytes = max_resident_bytes_;
  stats.budget_bytes = budget_bytes_;
  return stats;
}

}  // namespace deepdirect::train
