// Deterministic blocked parallelism for precompute stages.
//
// Every preprocessing stage in this library (pattern pseudo-labels,
// centrality sweeps, adjacency assembly) is parallelized the same way: the
// index range is cut into fixed-size blocks whose decomposition depends
// only on the problem size — never on the worker count — and each block
// writes into its own output region (or its own accumulator, reduced
// serially in block order afterwards). Because the work-to-block mapping
// and every reduction order are thread-count-independent, a stage produces
// bit-identical results for any `num_threads`, unlike the Hogwild training
// path where update interleaving is scheduler-dependent.
//
// Stages that need per-item randomness derive a counter-based RNG from
// (seed, item index) via PerItemSeed instead of consuming a shared
// sequential stream, which keeps the sampled values independent of both
// the visit order and the thread count.

#ifndef DEEPDIRECT_TRAIN_PARALLEL_H_
#define DEEPDIRECT_TRAIN_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "train/thread_pool.h"
#include "util/random.h"

namespace deepdirect::train {

namespace internal {

// Process-wide pool shared by every ParallelBlocks call, grown on demand
// to the largest worker count ever requested. Spawning threads costs far
// more than a preprocessing block on small graphs, so per-call pools would
// erase the parallel win; one cached pool amortizes the spawn across all
// stages. The mutex serializes whole ParallelBlocks calls — preprocessing
// stages are top-level and never nest, so contention is nil.
inline std::mutex& SharedPoolMutex() {
  static std::mutex mu;
  return mu;
}

inline ThreadPool& SharedPool(size_t workers) {
  static std::unique_ptr<ThreadPool> pool;
  if (!pool || pool->size() < workers) {
    pool = std::make_unique<ThreadPool>(workers);
  }
  return *pool;
}

}  // namespace internal

/// Resolves a `num_threads` knob: 0 = all hardware threads, otherwise the
/// requested count (at least 1).
inline size_t ResolveThreadCount(size_t num_threads) {
  return num_threads == 0 ? ThreadPool::HardwareConcurrency()
                          : std::max<size_t>(1, num_threads);
}

/// Number of blocks a range of `n` items splits into at `block_size`.
inline size_t NumBlocks(size_t n, size_t block_size) {
  return block_size == 0 ? 0 : (n + block_size - 1) / block_size;
}

/// Block size that caps a range of `n` items at `max_blocks` blocks —
/// used by accumulating stages whose per-block scratch is O(output size).
inline size_t BlockSizeFor(size_t n, size_t max_blocks) {
  return std::max<size_t>(1, (n + max_blocks - 1) / max_blocks);
}

/// Runs fn(block, begin, end) over the fixed decomposition of [0, n) into
/// `block_size`-sized blocks. With one worker (or a single block) the
/// blocks run inline in block order on the caller's thread; otherwise they
/// are distributed over a pool. The decomposition depends only on
/// (n, block_size), so any scheduling produces the same block set; callers
/// keep determinism by writing disjoint outputs per block (or reducing
/// per-block accumulators in block order after the call returns).
inline void ParallelBlocks(size_t n, size_t block_size, size_t num_threads,
                           const std::function<void(size_t, size_t, size_t)>&
                               fn) {
  const size_t blocks = NumBlocks(n, block_size);
  if (blocks == 0) return;
  const size_t workers = std::min(ResolveThreadCount(num_threads), blocks);
  if (workers <= 1) {
    for (size_t b = 0; b < blocks; ++b) {
      fn(b, b * block_size, std::min(n, (b + 1) * block_size));
    }
    return;
  }
  // One striped task per worker (block b runs on stripe b % workers): the
  // pool may hold more threads than this call requested, but at most
  // `workers` tasks exist, so the caller's thread budget is honored. The
  // stripe assignment never affects the output — blocks still write
  // disjoint regions regardless of which thread runs them.
  std::lock_guard<std::mutex> lock(internal::SharedPoolMutex());
  ThreadPool& pool = internal::SharedPool(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&, w] {
      for (size_t b = w; b < blocks; b += workers) {
        fn(b, b * block_size, std::min(n, (b + 1) * block_size));
      }
    });
  }
  pool.Wait();
}

/// Counter-based per-item seed: mixes (seed, item) through SplitMix64 so
/// each item owns an independent, visit-order-free RNG stream.
inline uint64_t PerItemSeed(uint64_t seed, uint64_t item) {
  util::SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (item + 1)));
  return sm.Next();
}

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_PARALLEL_H_
