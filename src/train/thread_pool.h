// A small fixed-size worker pool for parallel training.
//
// Workers are started once and fed through a mutex-guarded task queue;
// Wait() blocks until the queue is drained and every task has finished, so
// anything written by tasks is visible to the caller afterwards
// (happens-before via the pool's mutex). ParallelFor is the common entry
// point: it submits one task per index and waits.

#ifndef DEEPDIRECT_TRAIN_THREAD_POOL_H_
#define DEEPDIRECT_TRAIN_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deepdirect::train {

/// Fixed-size thread pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 = all hardware threads).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  /// Runs fn(0), ..., fn(n − 1) on the pool and waits for all of them.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// The machine's hardware thread count (at least 1).
  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_THREAD_POOL_H_
