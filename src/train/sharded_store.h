// ShardedStore: out-of-core storage for the E-step's working set.
//
// A store is a directory in the DDSH container format (graph/shard_format.h):
// one sealed graph file holding the symmetric-closure CSR, and one file per
// shard holding that shard's slice of the embedding matrix M, the
// connection matrix N, and the pattern arena for its undirected arcs. All
// of it is served through MAP_SHARED mmap, so the heap never holds the
// |E|×l parameter matrices — the kernel's page cache does, and a fixed
// resident budget (`ram_budget_mb`) bounds how much of it stays mapped in
// at once:
//
//   * EmbRow/ConnRow admit the row's shard on first touch and stamp its
//     LRU tick; admission over budget evicts the least-recently-used
//     resident shard by dropping its emb+conn pages (MADV_DONTNEED on a
//     MAP_SHARED mapping releases RSS without losing data — evicted rows
//     fault back in from the page cache / disk on the next touch).
//   * The returned spans stay valid for the store's lifetime even across
//     eviction (the mapping is never unmapped mid-run), so Hogwild workers
//     can race on rows exactly as they do on in-RAM matrices.
//   * Graph topology (offsets/adj/src/classes) is served from a read-only
//     MADV_RANDOM mapping of the sealed graph file and is not counted
//     against the budget; neither is the pattern arena (both are small
//     next to M and N and always hot).
//
// Residency counters are thread-striped-free by design: the admit path is
// a mutex (cold — once per shard working-set change), the touch path is
// two relaxed atomics. Create() fills the embedding sections with the
// caller's Rng in global row-major arc order — the exact draw order of
// ml::Matrix::FillUniform — which is what makes an nt=1 sharded run
// bit-identical to the in-RAM trainer regardless of the shard count.
//
// Not crash-atomic: shard files are live (unsealed) during training and
// Seal() must run before Open() will accept them again.

#ifndef DEEPDIRECT_TRAIN_SHARDED_STORE_H_
#define DEEPDIRECT_TRAIN_SHARDED_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/shard_format.h"
#include "serve/mmap_file.h"
#include "util/random.h"
#include "util/status.h"

namespace deepdirect::train {

/// Placement parameters of a new store.
struct ShardedStoreOptions {
  std::string dir;            ///< store directory (created if missing)
  size_t num_shards = 1;      ///< contiguous arc-range shards
  size_t ram_budget_mb = 256; ///< resident emb+conn budget across shards
};

/// Flat inputs Create() serializes; all spans reference caller memory and
/// are not retained. The pattern arrays are the global arena produced by
/// core::PrecomputePatterns (slot per arc, per-slot pseudo-labels, CSR of
/// triad pairs over *global* arc indices).
struct ShardedStoreInit {
  std::span<const size_t> offsets;      ///< num_nodes + 1
  std::span<const uint32_t> adjacency;  ///< num_arcs (also arc → dst)
  std::span<const uint32_t> sources;    ///< num_arcs (arc → src)
  std::span<const uint8_t> classes;     ///< num_arcs (core::ArcClass bytes)
  uint64_t num_connected_pairs = 0;
  uint64_t arc_hash = 0;
  size_t dimensions = 0;

  std::span<const uint32_t> slot;               ///< num_arcs; UINT32_MAX = none
  std::span<const double> degree_pseudo_label;  ///< per slot
  std::span<const uint8_t> degree_active;       ///< per slot
  std::span<const uint32_t> triad_offsets;      ///< num_slots + 1
  std::span<const graph::shard::TriadPair> triad_pairs;
};

/// See the file comment. Not movable (holds atomics and a mutex); factory
/// functions hand back a unique_ptr.
class ShardedStore {
 public:
  /// Creates a store under `options.dir`: writes and seals the graph file,
  /// lays out one file per shard, and fills the embedding sections with
  /// uniform draws from `rng` in [init_lo, init_hi), consuming draws in
  /// global row-major arc order (the ml::Matrix::FillUniform order). The
  /// connection sections start zero. Shard files are left unsealed for
  /// training; call Seal() when the parameters are final.
  static util::Result<std::unique_ptr<ShardedStore>> Create(
      const ShardedStoreOptions& options, const ShardedStoreInit& init,
      util::Rng& rng, float init_lo, float init_hi);

  /// Opens an existing, fully sealed store, validating every byte of every
  /// file (header, meta CRC, per-section CRCs, canonical offsets, zero
  /// padding) before any of it is trusted — the DDS1 reader contract.
  static util::Result<std::unique_ptr<ShardedStore>> Open(
      const std::string& dir, size_t ram_budget_mb);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // --- Geometry ---------------------------------------------------------
  size_t num_nodes() const { return static_cast<size_t>(meta_.num_nodes); }
  size_t num_arcs() const { return static_cast<size_t>(meta_.num_arcs); }
  size_t dimensions() const { return static_cast<size_t>(meta_.dimensions); }
  size_t num_shards() const { return static_cast<size_t>(meta_.num_shards); }
  uint64_t num_connected_pairs() const { return meta_.num_connected_pairs; }
  uint64_t arc_hash() const { return meta_.arc_hash; }
  const std::string& dir() const { return dir_; }

  /// Shard owning global arc `e` (contiguous uniform partition).
  size_t ShardOf(size_t e) const { return e / arcs_per_shard_; }
  uint64_t ShardArcBegin(size_t s) const { return shards_[s].arc_begin; }
  uint64_t ShardArcEnd(size_t s) const { return shards_[s].arc_end; }

  // --- Parameter rows (budget-managed) ----------------------------------
  /// Row e of the embedding matrix M. Admits the owning shard (evicting
  /// LRU shards past the budget) and stamps its LRU tick.
  std::span<float> EmbRow(size_t e) {
    Shard& s = shards_[ShardOf(e)];
    if (s.resident.load(std::memory_order_acquire) == 0) Admit(s);
    s.last_use.store(tick_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return {s.emb + (e - s.arc_begin) * meta_.dimensions,
            static_cast<size_t>(meta_.dimensions)};
  }

  /// Row e of the connection matrix N; same admission discipline.
  std::span<float> ConnRow(size_t e) {
    Shard& s = shards_[ShardOf(e)];
    if (s.resident.load(std::memory_order_acquire) == 0) Admit(s);
    s.last_use.store(tick_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return {s.conn + (e - s.arc_begin) * meta_.dimensions,
            static_cast<size_t>(meta_.dimensions)};
  }

  /// Advances the LRU clock; trainers call this once per SGD step so
  /// eviction order tracks recency of *steps*, not wall time.
  void NoteStep() { tick_.fetch_add(1, std::memory_order_relaxed); }

  // --- Pattern arena ----------------------------------------------------
  /// Pattern data of one undirected arc; `has` is false for arcs without a
  /// pattern slot. Triad pairs reference global arc indices.
  struct PatternView {
    bool has = false;
    bool degree_active = false;
    double pseudo_label = 0.0;
    std::span<const graph::shard::TriadPair> triads;
  };
  PatternView Pattern(size_t e) const {
    const Shard& s = shards_[ShardOf(e)];
    const uint32_t ls = s.slot[e - s.arc_begin];
    if (ls == UINT32_MAX) return {};
    PatternView view;
    view.has = true;
    view.degree_active = s.active[ls] != 0;
    view.pseudo_label = s.label[ls];
    view.triads = {s.triad_pairs + s.triad_off[ls],
                   s.triad_off[ls + 1] - s.triad_off[ls]};
    return view;
  }

  // --- Graph topology (mirrors core::TieIndex) --------------------------
  uint32_t Degree(uint32_t v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::span<const uint32_t> Neighbors(uint32_t v) const {
    return {adj_ + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }
  uint32_t ArcSrc(size_t e) const { return src_[e]; }
  uint32_t ArcDst(size_t e) const { return adj_[e]; }
  uint8_t ClassByte(size_t e) const { return classes_[e]; }
  /// Tie degree |c(e)| = Degree(dst) − 1 (see TieIndex::TieDegree).
  uint32_t TieDegree(size_t e) const { return Degree(adj_[e]) - 1; }

  /// Dense index of arc (u, v), or num_arcs() if absent.
  size_t TryIndexOf(uint32_t u, uint32_t v) const {
    if (u >= meta_.num_nodes) return num_arcs();
    const uint32_t* begin = adj_ + offsets_[u];
    const uint32_t* end = adj_ + offsets_[u + 1];
    const uint32_t* it = std::lower_bound(begin, end, v);
    if (it == end || *it != v) return num_arcs();
    return offsets_[u] + static_cast<size_t>(it - begin);
  }

  /// Samples a connected tie e' of arc e uniformly; returns num_arcs()
  /// when c(e) is empty. Replicates TieIndex::SampleConnectedTie exactly
  /// (same arithmetic, same single NextIndex draw) so a sharded nt=1 run
  /// consumes the identical RNG stream as the in-RAM trainer.
  template <typename RngT>
  size_t SampleConnectedTie(size_t e, RngT& rng) const {
    const uint32_t u = src_[e];
    const uint32_t v = adj_[e];
    const uint32_t deg = Degree(v);
    if (deg <= 1) return num_arcs();
    const size_t base = offsets_[v];
    const uint32_t* row = adj_ + base;
    const size_t rank_of_u =
        static_cast<size_t>(std::lower_bound(row, row + deg, u) - row);
    size_t pick = rng.NextIndex(deg - 1);
    if (pick >= rank_of_u) ++pick;
    return base + pick;
  }

  // --- Lifecycle --------------------------------------------------------
  /// Syncs every shard file and stamps section CRCs, the meta CRC, and the
  /// sealed flag — after which the files validate byte-for-byte and Open()
  /// accepts the store again. Idempotent.
  util::Status Seal();

  /// Residency accounting, exact (updated under the admit mutex).
  struct Stats {
    uint64_t admissions = 0;
    uint64_t evictions = 0;
    uint64_t resident_bytes = 0;      ///< currently admitted emb+conn bytes
    uint64_t max_resident_bytes = 0;  ///< high-water mark of the above
    uint64_t budget_bytes = 0;
  };
  Stats GetStats() const;

 private:
  struct Shard {
    serve::MmapRwFile file;
    uint64_t arc_begin = 0;
    uint64_t arc_end = 0;
    uint64_t num_slots = 0;
    const uint32_t* slot = nullptr;
    const double* label = nullptr;
    const uint8_t* active = nullptr;
    const uint32_t* triad_off = nullptr;
    const graph::shard::TriadPair* triad_pairs = nullptr;
    float* emb = nullptr;
    float* conn = nullptr;
    uint64_t evict_offset = 0;  ///< file offset of the emb section
    uint64_t evict_bytes = 0;   ///< emb+conn payload bytes
    std::atomic<uint32_t> resident{0};
    std::atomic<uint64_t> last_use{0};
  };

  ShardedStore() = default;

  /// Maps one sealed shard file, validates every byte, and wires its
  /// section pointers into shards_[index].
  util::Status AttachShard(size_t index, const std::string& path);

  /// Admits `s` under the budget, evicting LRU resident shards first.
  void Admit(Shard& s);

  std::string dir_;
  graph::shard::GraphMeta meta_{};
  size_t arcs_per_shard_ = 1;
  uint64_t budget_bytes_ = 0;

  serve::MmapFile graph_file_;
  const uint64_t* offsets_ = nullptr;
  const uint32_t* adj_ = nullptr;
  const uint32_t* src_ = nullptr;
  const uint8_t* classes_ = nullptr;

  std::unique_ptr<Shard[]> shards_;

  std::atomic<uint64_t> tick_{0};
  mutable std::mutex admit_mu_;
  uint64_t resident_bytes_ = 0;      // guarded by admit_mu_
  uint64_t max_resident_bytes_ = 0;  // guarded by admit_mu_
  uint64_t admissions_ = 0;          // guarded by admit_mu_
  uint64_t evictions_ = 0;           // guarded by admit_mu_
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_SHARDED_STORE_H_
