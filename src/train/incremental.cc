#include "train/incremental.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>

#include "train/checkpoint.h"
#include "util/random.h"

namespace deepdirect::train {
namespace {

namespace fs = std::filesystem;

// Unordered-pair key for in-batch duplicate detection (same packing as
// GraphBuilder's occupancy set).
uint64_t PairKey(graph::NodeId u, graph::NodeId v) {
  const uint64_t lo = std::min(u, v);
  const uint64_t hi = std::max(u, v);
  return (hi << 32) | lo;
}

// Mirror of the engine-owned "meta" section layout (checkpoint.cc). The
// state loader only needs the epoch counter; the writer fills the run-
// shape fields with zeros, which makes Train's resume scan reject the
// container with a shape mismatch (warn + skip) instead of resuming a
// full-retrain budget from post-update state.
struct CheckpointMetaMirror {
  uint64_t epochs_done = 0;
  uint64_t next_step = 0;
  uint64_t total_steps = 0;
  uint64_t steps_per_epoch = 0;
  uint64_t shard_seed = 0;
  double lr_initial = 0.0;
  double lr_min_fraction = 0.0;
  uint32_t lr_decay = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(CheckpointMetaMirror) == 64);

}  // namespace

util::Result<TieBatch> ParseTieBatch(std::istream& in,
                                     const std::string& origin) {
  TieBatch batch;
  // Unordered pair -> first line that declared it.
  std::unordered_map<uint64_t, uint32_t> seen;

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (line[0] == '#') {
      std::istringstream header(line.substr(1));
      std::string keyword;
      if (header >> keyword && keyword == "nodes") {
        if (!(header >> batch.declared_nodes)) {
          return util::Status::InvalidArgument(
              origin + ": malformed '# nodes' header at line " +
              std::to_string(line_number));
        }
      }
      continue;
    }
    std::istringstream fields(line);
    long long u_raw = -1, v_raw = -1;
    std::string type_token;
    if (!(fields >> u_raw >> v_raw >> type_token) || u_raw < 0 || v_raw < 0) {
      return util::Status::InvalidArgument(
          origin + ": malformed tie at line " + std::to_string(line_number) +
          ": '" + line + "'");
    }
    graph::TieType type;
    if (type_token == "d") {
      type = graph::TieType::kDirected;
    } else if (type_token == "b") {
      type = graph::TieType::kBidirectional;
    } else if (type_token == "u") {
      type = graph::TieType::kUndirected;
    } else {
      return util::Status::InvalidArgument(
          origin + ": unknown tie type '" + type_token + "' at line " +
          std::to_string(line_number));
    }
    std::string extra;
    if (fields >> extra) {
      return util::Status::InvalidArgument(
          origin + ": trailing data '" + extra + "' after tie at line " +
          std::to_string(line_number) + ": '" + line + "'");
    }
    const auto u = static_cast<graph::NodeId>(u_raw);
    const auto v = static_cast<graph::NodeId>(v_raw);
    if (u == v) {
      return util::Status::InvalidArgument(
          origin + ": self-loop " + std::to_string(u) + " at line " +
          std::to_string(line_number));
    }
    const auto [it, inserted] =
        seen.emplace(PairKey(u, v), static_cast<uint32_t>(line_number));
    if (!inserted) {
      return util::Status::InvalidArgument(
          origin + ": duplicate tie " + std::to_string(u) + " " +
          std::to_string(v) + " at line " + std::to_string(line_number) +
          " (first declared at line " + std::to_string(it->second) + ")");
    }
    batch.max_node_id = std::max({batch.max_node_id, u, v});
    batch.ties.push_back(
        {u, v, type, static_cast<uint32_t>(line_number)});
  }
  if (in.bad()) {
    return util::Status::IOError(origin + ": read error");
  }
  return batch;
}

util::Result<TieBatch> LoadTieBatch(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return util::Status::IOError("cannot open for reading: " + path);
  }
  return ParseTieBatch(in, path);
}

util::Result<EStepState> LoadEStepState(const std::string& dir,
                                        const std::string& trainer) {
  // A callback-less Checkpointer is just the directory-scan logic; the
  // sections are read directly below (the engine's Resume would insist on
  // a matching run shape, which a warm-start consumer has no use for).
  CheckpointOptions options;
  options.dir = dir;
  options.trainer = trainer;
  const Checkpointer scanner(options, RunShape{}, nullptr, nullptr);

  for (const std::string& path : scanner.ListCheckpoints()) {
    auto read = CheckpointData::Read(path);
    if (!read.ok()) {
      std::cerr << "[incremental] skipping " << path << ": "
                << read.status().ToString() << "\n";
      continue;
    }
    const CheckpointData& data = read.value();

    EStepState state;
    CheckpointMetaMirror meta;
    util::Status status = data.ReadPod("meta", &meta);
    if (status.ok()) status = data.ReadVector("w_prime", &state.w_prime);
    if (status.ok() && state.w_prime.empty()) {
      status = util::Status::InvalidArgument(path + ": empty w_prime");
    }
    if (status.ok()) status = data.ReadVector("m", &state.m);
    if (status.ok()) status = data.ReadVector("n", &state.n);
    if (status.ok()) status = data.ReadPod("b_prime", &state.b_prime);
    if (status.ok()) {
      state.dimensions = state.w_prime.size();
      if (state.m.size() != state.n.size() ||
          state.m.size() % state.dimensions != 0) {
        status = util::Status::InvalidArgument(
            path + ": embedding sections do not factor into " +
            std::to_string(state.dimensions) + "-wide rows (m " +
            std::to_string(state.m.size()) + ", n " +
            std::to_string(state.n.size()) + " floats)");
      }
    }
    if (!status.ok()) {
      std::cerr << "[incremental] skipping " << path << ": "
                << status.ToString() << "\n";
      continue;
    }
    state.num_arcs = state.m.size() / state.dimensions;
    state.epochs_done = meta.epochs_done;
    if (data.Has("tie_hash")) {
      // Optional (older checkpoints lack it); a bad read is a corrupt
      // section, not a missing feature.
      status = data.ReadPod("tie_hash", &state.tie_hash);
      if (!status.ok()) {
        std::cerr << "[incremental] skipping " << path << ": "
                  << status.ToString() << "\n";
        continue;
      }
    }
    return state;
  }
  return util::Status::NotFound(
      "no usable '" + trainer + "' checkpoint in " + dir +
      " (train with checkpointing enabled first; the final state is "
      "written when CheckpointPolicy::write_final is set)");
}

util::Status SaveEStepState(const std::string& dir,
                            const std::string& trainer,
                            const EStepState& state) {
  if (state.dimensions == 0 || state.w_prime.size() != state.dimensions ||
      state.m.size() != state.num_arcs * state.dimensions ||
      state.n.size() != state.m.size()) {
    return util::Status::InvalidArgument(
        "inconsistent E-step state: " + std::to_string(state.num_arcs) +
        " arcs x " + std::to_string(state.dimensions) + " dims, m " +
        std::to_string(state.m.size()) + ", n " +
        std::to_string(state.n.size()) + ", w_prime " +
        std::to_string(state.w_prime.size()));
  }
  CheckpointWriter writer;
  CheckpointMetaMirror meta;
  meta.epochs_done = state.epochs_done;
  writer.AddPod("meta", meta);
  writer.AddSection("trainer", trainer.data(), trainer.size());
  // A fresh, valid serial stream: the chained update derives its own RNG,
  // so this section exists only to keep the container uniform.
  const std::array<uint64_t, 4> rng_state =
      util::Rng(state.epochs_done).state();
  writer.AddSection("rng", rng_state.data(), rng_state.size() * 8);
  writer.AddVector("m", state.m);
  writer.AddVector("n", state.n);
  writer.AddVector("w_prime", state.w_prime);
  writer.AddPod("b_prime", state.b_prime);
  writer.AddPod("tie_hash", state.tie_hash);

  std::error_code ec;
  fs::create_directories(dir, ec);
  CheckpointOptions options;
  options.dir = dir;
  options.trainer = trainer;
  const Checkpointer namer(options, RunShape{}, nullptr, nullptr);
  return writer.WriteAtomic(namer.PathFor(state.epochs_done));
}

}  // namespace deepdirect::train
