#include "train/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace deepdirect::train {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kFormatVersion = 1;
constexpr std::array<char, 4> kFooterMagic{'D', 'D', 'E', 'N'};
constexpr size_t kMaxSectionName = 255;

void AppendBytes(std::string& out, const void* data, size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendPod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  AppendBytes(out, &value, sizeof(T));
}

/// Bounds-checked cursor over an in-memory container image. Every read
/// either succeeds or records a truncation error naming the offset.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, const std::string& origin)
      : bytes_(bytes), origin_(origin) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return bytes_.size() - offset_; }

  util::Status ReadRaw(void* out, size_t size, std::string_view what) {
    if (remaining() < size) {
      std::ostringstream msg;
      msg << origin_ << ": truncated reading " << what << " at offset "
          << offset_ << " (need " << size << " bytes, have " << remaining()
          << ")";
      return util::Status::InvalidArgument(msg.str());
    }
    std::memcpy(out, bytes_.data() + offset_, size);
    offset_ += size;
    return util::Status::OK();
  }

  template <typename T>
  util::Status Read(T* out, std::string_view what) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadRaw(out, sizeof(T), what);
  }

  util::Status Skip(size_t size, std::string_view what) {
    if (remaining() < size) {
      std::ostringstream msg;
      msg << origin_ << ": truncated reading " << what << " at offset "
          << offset_ << " (need " << size << " bytes, have " << remaining()
          << ")";
      return util::Status::InvalidArgument(msg.str());
    }
    offset_ += size;
    return util::Status::OK();
  }

 private:
  std::string_view bytes_;
  const std::string& origin_;
  size_t offset_ = 0;
};

/// Engine-owned metadata section; must match the live RunShape on resume.
struct CheckpointMeta {
  uint64_t epochs_done = 0;
  uint64_t next_step = 0;
  uint64_t total_steps = 0;
  uint64_t steps_per_epoch = 0;
  uint64_t shard_seed = 0;
  double lr_initial = 0.0;
  double lr_min_fraction = 0.0;
  uint32_t lr_decay = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(CheckpointMeta) == 64);

void WarnSkip(const std::string& path, const util::Status& status) {
  std::cerr << "[checkpoint] skipping " << path << ": " << status.ToString()
            << "\n";
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

util::Status AtomicWriteFile(const std::string& path,
                             std::string_view bytes) {
  const fs::path target(path);
  const fs::path dir =
      target.has_parent_path() ? target.parent_path() : fs::path(".");
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::IOError("cannot open " + tmp_path +
                                   " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return util::Status::IOError("short write to " + tmp_path);
    }
  }
  // Flush file data to stable storage before the rename publishes it; a
  // rename that survives a crash must never point at unflushed data.
  int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::IOError("cannot reopen " + tmp_path + " for fsync");
  }
  const bool file_synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!file_synced) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return util::Status::IOError("fsync failed for " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return util::Status::IOError("rename " + tmp_path + " -> " + path +
                                 " failed");
  }
  // Persist the directory entry too; best-effort (some filesystems refuse
  // O_RDONLY on directories), the data itself is already durable.
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return util::Status::OK();
}

void CheckpointWriter::AddSection(std::string_view name, const void* data,
                                  size_t size) {
  DD_CHECK(!name.empty());
  DD_CHECK_LE(name.size(), kMaxSectionName);
  for (const Section& section : sections_) {
    DD_CHECK_MSG(section.name != name,
                 "duplicate checkpoint section: " << name);
  }
  Section section;
  section.name = std::string(name);
  section.payload.assign(static_cast<const char*>(data), size);
  sections_.push_back(std::move(section));
}

std::string CheckpointWriter::Serialize() const {
  std::string out;
  AppendBytes(out, magic_.data(), magic_.size());
  AppendPod(out, kFormatVersion);
  AppendPod(out, static_cast<uint64_t>(sections_.size()));
  AppendPod(out, Crc32(out.data(), out.size()));
  for (const Section& section : sections_) {
    const size_t section_start = out.size();
    AppendPod(out, static_cast<uint32_t>(section.name.size()));
    AppendBytes(out, section.name.data(), section.name.size());
    AppendPod(out, static_cast<uint64_t>(section.payload.size()));
    AppendBytes(out, section.payload.data(), section.payload.size());
    AppendPod(out, Crc32(out.data() + section_start,
                         out.size() - section_start));
  }
  AppendBytes(out, kFooterMagic.data(), kFooterMagic.size());
  return out;
}

util::Status CheckpointWriter::WriteAtomic(const std::string& path) const {
  return AtomicWriteFile(path, Serialize());
}

util::Result<CheckpointData> CheckpointData::Parse(
    std::string bytes, const std::string& origin,
    std::array<char, 4> magic) {
  CheckpointData data(std::move(bytes), origin);
  ByteReader reader(data.bytes_, data.origin_);

  std::array<char, 4> file_magic{};
  DD_RETURN_NOT_OK(reader.ReadRaw(file_magic.data(), 4, "magic"));
  if (file_magic != magic) {
    return util::Status::InvalidArgument(
        origin + ": bad magic (not a " +
        std::string(magic.data(), magic.size()) + " file)");
  }
  uint32_t version = 0;
  DD_RETURN_NOT_OK(reader.Read(&version, "version"));
  if (version != kFormatVersion) {
    std::ostringstream msg;
    msg << origin << ": unsupported format version " << version
        << " (expected " << kFormatVersion << ")";
    return util::Status::InvalidArgument(msg.str());
  }
  uint64_t section_count = 0;
  DD_RETURN_NOT_OK(reader.Read(&section_count, "section count"));
  uint32_t header_crc = 0;
  const size_t header_size = reader.offset();
  DD_RETURN_NOT_OK(reader.Read(&header_crc, "header CRC"));
  if (Crc32(data.bytes_.data(), header_size) != header_crc) {
    return util::Status::InvalidArgument(origin + ": header CRC mismatch");
  }
  // Each section costs at least name_size + payload_size + CRC bytes; an
  // absurd count from a flipped bit must not drive a huge loop.
  if (section_count > data.bytes_.size() / (sizeof(uint32_t) * 2)) {
    std::ostringstream msg;
    msg << origin << ": implausible section count " << section_count;
    return util::Status::InvalidArgument(msg.str());
  }

  for (uint64_t s = 0; s < section_count; ++s) {
    const size_t section_start = reader.offset();
    uint32_t name_size = 0;
    DD_RETURN_NOT_OK(reader.Read(&name_size, "section name size"));
    if (name_size == 0 || name_size > kMaxSectionName) {
      std::ostringstream msg;
      msg << origin << ": bad section name size " << name_size
          << " at offset " << section_start;
      return util::Status::InvalidArgument(msg.str());
    }
    std::string name(name_size, '\0');
    DD_RETURN_NOT_OK(reader.ReadRaw(name.data(), name_size, "section name"));
    uint64_t payload_size = 0;
    DD_RETURN_NOT_OK(reader.Read(&payload_size, "section payload size"));
    const size_t payload_offset = reader.offset();
    DD_RETURN_NOT_OK(reader.Skip(payload_size, "section payload"));
    uint32_t section_crc = 0;
    DD_RETURN_NOT_OK(reader.Read(&section_crc, "section CRC"));
    const size_t covered = payload_offset + payload_size - section_start;
    if (Crc32(data.bytes_.data() + section_start, covered) != section_crc) {
      return util::Status::InvalidArgument(origin + ": CRC mismatch in section '" +
                                           name + "'");
    }
    const auto [it, inserted] = data.sections_.emplace(
        std::move(name), std::make_pair(payload_offset,
                                        static_cast<size_t>(payload_size)));
    if (!inserted) {
      return util::Status::InvalidArgument(origin + ": duplicate section '" +
                                           it->first + "'");
    }
  }

  std::array<char, 4> footer{};
  DD_RETURN_NOT_OK(reader.ReadRaw(footer.data(), 4, "footer magic"));
  if (footer != kFooterMagic) {
    return util::Status::InvalidArgument(origin + ": bad footer magic");
  }
  if (reader.remaining() != 0) {
    std::ostringstream msg;
    msg << origin << ": " << reader.remaining()
        << " trailing bytes after footer";
    return util::Status::InvalidArgument(msg.str());
  }
  return data;
}

util::Result<CheckpointData> CheckpointData::Read(
    const std::string& path, std::array<char, 4> magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return util::Status::IOError("read error on " + path);
  }
  return Parse(std::move(buffer).str(), path, magic);
}

util::Result<std::string_view> CheckpointData::Section(
    std::string_view name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) {
    return util::Status::NotFound(origin_ + ": no section '" +
                                  std::string(name) + "'");
  }
  return std::string_view(bytes_).substr(it->second.first,
                                         it->second.second);
}

util::Status CheckpointData::SizeMismatch(std::string_view name,
                                          size_t expected,
                                          size_t got) const {
  std::ostringstream msg;
  msg << origin_ << ": section '" << name << "' has " << got
      << " bytes, expected " << expected;
  return util::Status::InvalidArgument(msg.str());
}

Checkpointer::Checkpointer(CheckpointOptions options, RunShape shape,
                           SaveFn save_state, LoadFn load_state)
    : options_(std::move(options)),
      shape_(shape),
      save_(std::move(save_state)),
      load_(std::move(load_state)) {}

std::string Checkpointer::PathFor(uint64_t epochs_done) const {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "-%08llu.ckpt",
                static_cast<unsigned long long>(epochs_done));
  return (fs::path(options_.dir) / (options_.trainer + suffix)).string();
}

std::vector<std::string> Checkpointer::ListCheckpoints() const {
  std::vector<std::string> paths;
  if (options_.dir.empty()) return paths;
  std::error_code ec;
  const std::string prefix = options_.trainer + "-";
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() + 5 &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - 5, 5, ".ckpt") == 0) {
      paths.push_back(entry.path().string());
    }
  }
  // Zero-padded epoch counters make lexicographic order chronological.
  std::sort(paths.rbegin(), paths.rend());
  return paths;
}

uint64_t Checkpointer::Resume(util::Rng& rng) {
  if (!options_.resume || options_.dir.empty()) return 0;
  for (const std::string& path : ListCheckpoints()) {
    auto read = CheckpointData::Read(path);
    if (!read.ok()) {
      WarnSkip(path, read.status());
      continue;
    }
    const CheckpointData& data = read.value();

    CheckpointMeta meta;
    util::Status status = data.ReadPod("meta", &meta);
    std::vector<char> trainer_tag;
    if (status.ok()) status = data.ReadVector("trainer", &trainer_tag);
    std::vector<uint64_t> rng_state;
    if (status.ok()) status = data.ReadVector("rng", &rng_state, 4);
    if (status.ok() &&
        std::string(trainer_tag.begin(), trainer_tag.end()) !=
            options_.trainer) {
      status = util::Status::InvalidArgument(
          path + ": trainer tag '" +
          std::string(trainer_tag.begin(), trainer_tag.end()) +
          "' does not match '" + options_.trainer + "'");
    }
    if (status.ok() &&
        (meta.total_steps != shape_.total_steps ||
         meta.steps_per_epoch != shape_.steps_per_epoch ||
         meta.shard_seed != shape_.shard_seed ||
         meta.lr_initial != shape_.lr.initial ||
         meta.lr_min_fraction != shape_.lr.min_fraction ||
         meta.lr_decay != static_cast<uint32_t>(shape_.lr.decay))) {
      status = util::Status::InvalidArgument(
          path + ": run shape does not match the current configuration");
    }
    // Commit point: trainer state last, rng only after everything loaded.
    if (status.ok()) status = load_(data);
    if (!status.ok()) {
      WarnSkip(path, status);
      continue;
    }
    rng.set_state({rng_state[0], rng_state[1], rng_state[2], rng_state[3]});
    if (obs::Enabled()) {
      obs::Registry::Default().GetCounter("checkpoint.resumes")->Add(1);
    }
    return meta.epochs_done;
  }
  return 0;
}

void Checkpointer::Write(const EpochEnd& end, const util::Rng& rng) {
  obs::TraceSpan span("checkpoint.write");
  CheckpointWriter writer;
  CheckpointMeta meta;
  meta.epochs_done = end.epoch + 1;
  meta.next_step = end.next_step;
  meta.total_steps = shape_.total_steps;
  meta.steps_per_epoch = shape_.steps_per_epoch;
  meta.shard_seed = shape_.shard_seed;
  meta.lr_initial = shape_.lr.initial;
  meta.lr_min_fraction = shape_.lr.min_fraction;
  meta.lr_decay = static_cast<uint32_t>(shape_.lr.decay);
  writer.AddPod("meta", meta);
  writer.AddSection("trainer", options_.trainer.data(),
                    options_.trainer.size());
  const std::array<uint64_t, 4> rng_state = rng.state();
  writer.AddSection("rng", rng_state.data(), rng_state.size() * 8);
  save_(writer);

  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  const std::string serialized = writer.Serialize();
  util::Timer write_timer;
  const util::Status status =
      AtomicWriteFile(PathFor(meta.epochs_done), serialized);
  if (!status.ok()) {
    // Losing one checkpoint must not kill a multi-hour run.
    std::cerr << "[checkpoint] write failed: " << status.ToString() << "\n";
    return;
  }
  if (obs::Enabled()) {
    obs::Registry& registry = obs::Registry::Default();
    registry.GetCounter("checkpoint.writes")->Add(1);
    registry.GetCounter("checkpoint.bytes")->Add(serialized.size());
    registry.GetHistogram("checkpoint.write_seconds")
        ->Observe(write_timer.ElapsedSeconds());
  }
  since_last_write_.Reset();
  Prune();
}

void Checkpointer::Prune() const {
  if (options_.policy.keep_last == 0) return;
  const std::vector<std::string> paths = ListCheckpoints();
  for (size_t i = options_.policy.keep_last; i < paths.size(); ++i) {
    std::error_code ec;
    fs::remove(paths[i], ec);
  }
}

bool Checkpointer::AtEpochBoundary(const EpochEnd& end,
                                   const util::Rng& rng) {
  ++epochs_this_run_;
  if (enabled()) {
    const CheckpointPolicy& policy = options_.policy;
    if (end.last) {
      // The final boundary is only written on request (write_final): a
      // completed run needs no resume point, but warm-start consumers
      // need the fully-trained state.
      if (policy.write_final) Write(end, rng);
    } else {
      const bool epoch_due = policy.every_n_epochs > 0 &&
                             (end.epoch + 1) % policy.every_n_epochs == 0;
      const bool time_due =
          policy.every_seconds > 0.0 &&
          since_last_write_.ElapsedSeconds() >= policy.every_seconds;
      if (epoch_due || time_due) Write(end, rng);
    }
  }
  if (options_.stop_after_epochs > 0 &&
      epochs_this_run_ >= options_.stop_after_epochs && !end.last) {
    stopped_ = true;
  }
  return stopped_;
}

}  // namespace deepdirect::train
