// Memory-access policies for shared-parameter SGD (Hogwild!, Niu et al.).
//
// Trainer step bodies are templated on an access policy so one body serves
// both execution modes:
//   * SerialAccess  — plain loads/stores. Compiles to exactly the
//     pre-refactor arithmetic, so the single-threaded path stays
//     bit-identical to the historical trainers.
//   * HogwildAccess — relaxed std::atomic_ref loads/stores. Lock-free
//     sparse updates race benignly (the Hogwild model), but every access
//     is a tagged atomic, so the code is data-race-free in the C++ memory
//     model and runs clean under ThreadSanitizer. On x86-64 a relaxed
//     float/double load/store compiles to a plain mov, so the policy costs
//     nothing on the hot path.
//
// The span helpers are thin forwards into the kernel layer
// (src/kernels/kernels.h), which dispatches each call between the exact
// policy-scalar loops (bit-identical to ml::Dot / ml::Axpy) and the SIMD
// ops table — see kernels/dispatch.h for the mode switch.

#ifndef DEEPDIRECT_TRAIN_HOGWILD_H_
#define DEEPDIRECT_TRAIN_HOGWILD_H_

#include <atomic>
#include <span>

#include "kernels/kernels.h"

namespace deepdirect::train {

/// Plain access: the deterministic single-worker path.
struct SerialAccess {
  static constexpr bool kConcurrent = false;
  static float Load(const float& x) { return x; }
  static double Load(const double& x) { return x; }
  static void Store(float& x, float v) { x = v; }
  static void Store(double& x, double v) { x = v; }
};

/// Relaxed-atomic access: the lock-free multi-worker path.
struct HogwildAccess {
  static constexpr bool kConcurrent = true;
  static float Load(const float& x) {
    return std::atomic_ref<float>(const_cast<float&>(x))
        .load(std::memory_order_relaxed);
  }
  static double Load(const double& x) {
    return std::atomic_ref<double>(const_cast<double&>(x))
        .load(std::memory_order_relaxed);
  }
  static void Store(float& x, float v) {
    std::atomic_ref<float>(x).store(v, std::memory_order_relaxed);
  }
  static void Store(double& x, double v) {
    std::atomic_ref<double>(x).store(v, std::memory_order_relaxed);
  }
};

/// Dot product of embedding rows under policy `A`; scalar dispatch is
/// term-for-term identical to ml::Dot (double accumulation).
template <typename A>
inline double DotRows(std::span<const float> a, std::span<const float> b) {
  return kernels::DotRows<A>(a, b);
}

/// y[i] += float(alpha · x[i]) under policy `A`; scalar dispatch mirrors
/// ml::Axpy.
template <typename A>
inline void AxpyRows(std::span<float> y, double alpha,
                     std::span<const float> x) {
  kernels::AxpyRows<A>(y, alpha, x);
}

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_HOGWILD_H_
