// Per-worker deterministic RNG streams for parallel SGD.
//
// Hogwild workers must not share one Rng (the draws would race) and must not
// all start from the config seed (the streams would coincide). ShardedRng
// derives worker streams from a single base seed: shard w perturbs the seed
// by (w + 1) golden-gamma increments before the usual SplitMix64 → Xoshiro
// expansion, so streams are decorrelated from each other and from the
// trainer's own Rng(seed) (which seeds Xoshiro from SplitMix64(seed)
// directly). The derivation is pure, so a shard's stream is reproducible
// from (seed, shard) alone.

#ifndef DEEPDIRECT_TRAIN_SHARDED_RNG_H_
#define DEEPDIRECT_TRAIN_SHARDED_RNG_H_

#include <cstdint>

#include "util/random.h"

namespace deepdirect::train {

/// Factory for decorrelated per-shard Rng streams from one base seed.
class ShardedRng {
 public:
  explicit ShardedRng(uint64_t base_seed) : base_seed_(base_seed) {}

  /// The deterministic Rng stream of shard `shard`.
  util::Rng MakeShard(size_t shard) const {
    // 0x9e3779b97f4a7c15 is SplitMix64's golden-ratio gamma; multiplying by
    // (shard + 1) advances each shard to a distinct point of the underlying
    // Weyl sequence before expansion.
    util::SplitMix64 mix(base_seed_ ^
                         (0x9e3779b97f4a7c15ULL * (shard + 1)));
    return util::Rng(mix.Next());
  }

  uint64_t base_seed() const { return base_seed_; }

 private:
  uint64_t base_seed_;
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_SHARDED_RNG_H_
