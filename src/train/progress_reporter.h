// Windowed training-progress reporting shared by the SGD trainers.
//
// Accumulates per-step losses into a window and invokes the trainer's
// progress callback every `report_every` steps (and once more at the end of
// the budget), reproducing the historical DeepDirect reporting cadence
// exactly in the single-worker path. Thread-safe: Hogwild workers record
// batches under a mutex; the callback is never invoked concurrently.
//
// When constructed with a metrics prefix and the obs registry is enabled,
// every closed window additionally appends its mean loss to the series
// "<prefix>.loss" — the loss curve exported by --metrics-out snapshots.

#ifndef DEEPDIRECT_TRAIN_PROGRESS_REPORTER_H_
#define DEEPDIRECT_TRAIN_PROGRESS_REPORTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "util/timer.h"

namespace deepdirect::train {

/// (steps processed so far, total step budget, mean loss over the window).
using ProgressCallback =
    std::function<void(uint64_t step, uint64_t total, double mean_loss)>;

/// Thread-safe windowed loss/throughput tracker.
class ProgressReporter {
 public:
  /// `total` is the global step budget and `step_offset` the global index
  /// of the first step this reporter will see (non-zero when a trainer
  /// drives several epoch-sized runs against one budget). A non-empty
  /// `metrics_prefix` mirrors window losses into the obs registry when it
  /// is enabled.
  ProgressReporter(ProgressCallback callback, uint64_t report_every,
                   uint64_t total, uint64_t step_offset = 0,
                   std::string metrics_prefix = "");

  /// Records `steps` completed steps whose losses sum to `loss_sum`.
  void Record(uint64_t steps, double loss_sum);

  /// Steps recorded so far.
  uint64_t processed() const {
    return processed_.load(std::memory_order_relaxed);
  }

  /// Observed throughput since construction.
  double StepsPerSec() const;

 private:
  ProgressCallback callback_;
  const std::string loss_series_;  ///< empty = no metrics mirroring
  const uint64_t report_every_;
  const uint64_t total_;
  const uint64_t step_offset_;
  std::atomic<uint64_t> processed_{0};
  std::mutex mu_;
  uint64_t window_steps_ = 0;  // guarded by mu_
  double window_loss_ = 0.0;   // guarded by mu_
  util::Timer timer_;
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_PROGRESS_REPORTER_H_
