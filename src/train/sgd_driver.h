// SgdDriver: the unified parallel SGD engine behind every trainer.
//
// A trainer hands the driver a step budget, a learning-rate schedule, and a
// step body; the driver owns execution:
//   * one worker  — the body runs inline on the trainer's own Rng with
//     SerialAccess, which reproduces the historical single-threaded
//     trainers bit-for-bit (same RNG stream, same float arithmetic);
//   * N workers   — the step budget is partitioned across the pool in
//     strides (worker w runs steps w, w+N, w+2N, … of each chunk, so each
//     worker sweeps the full learning-rate decay), every worker draws from
//     its own ShardedRng stream, and the body runs with HogwildAccess:
//     lock-free relaxed-atomic updates on the shared parameters, the
//     Hogwild model.
//
// The budget is executed in epoch-sized chunks (steps_per_epoch; 0 = the
// whole budget is one epoch). Epoch boundaries are where the driver fires
// the epoch_start/epoch_end hooks, appends the per-epoch ".run_loss"
// metric, and hands control to the Checkpointer — the only points where
// all workers are quiesced and the parameter state is consistent, which is
// what makes checkpoint/resume exact. In the multi-worker path each
// epoch's worker streams are derived from (shard_seed, epoch), so a
// resumed run samples the remaining epochs identically to the
// uninterrupted one.
//
// The body is a generic callable
//     double body(AccessPolicy, const SgdStep&)
// returning the step's loss contribution (0.0 when untracked); Run returns
// the sum of all executed step losses. Per-worker scratch buffers should be
// sized by num_workers() and indexed by SgdStep::worker.

#ifndef DEEPDIRECT_TRAIN_SGD_DRIVER_H_
#define DEEPDIRECT_TRAIN_SGD_DRIVER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/checkpoint.h"
#include "train/hogwild.h"
#include "train/lr_schedule.h"
#include "train/parallel.h"
#include "train/progress_reporter.h"
#include "train/sharded_rng.h"
#include "train/thread_pool.h"
#include "util/random.h"

namespace deepdirect::train {

/// SgdStep::shard value when the run is unsharded (or serial).
inline constexpr size_t kNoShard = static_cast<size_t>(-1);

/// Shard-affinity plan for Hogwild runs over out-of-core storage. With
/// `num_shards > 0` and more than one worker, each epoch chunk's step
/// budget is apportioned across shards by weight (largest remainder) and
/// shard s is pinned to worker s % num_workers: a worker executes its
/// shards' steps as contiguous spans, so the resident pages it faults in
/// stay hot instead of being re-faulted by every worker. The serial path
/// ignores the plan entirely — nt=1 keeps the global (shard-free) sampling
/// order, which is what makes nt=1 output independent of the shard count.
struct ShardPlan {
  /// Number of storage shards; 0 disables shard affinity.
  size_t num_shards = 0;
  /// Per-shard sampling weight (e.g. connected-pair mass). Empty = uniform.
  std::vector<double> shard_weights;
};

/// Execution parameters of one driver run.
struct SgdOptions {
  /// Steps this run executes (the full budget; resume skips within it).
  uint64_t steps = 0;
  /// Worker count: 1 = deterministic serial path, 0 = all hardware threads.
  size_t num_threads = 1;
  /// Learning-rate schedule over the global budget.
  LrSchedule lr;
  /// Global index of this run's first step (non-zero when a trainer drives
  /// several epoch-sized runs against one decay budget).
  uint64_t step_offset = 0;
  /// Global budget for LR decay and progress totals; 0 = step_offset+steps.
  uint64_t total_steps = 0;
  /// Base seed for per-worker RNG streams (multi-worker runs only; the
  /// serial path draws from the trainer's own Rng instead).
  uint64_t shard_seed = 0;
  /// Steps per epoch chunk; 0 treats the whole budget as one epoch. Epoch
  /// e covers global steps [e·spe, (e+1)·spe); the final epoch may be
  /// shorter when the budget is not a multiple.
  uint64_t steps_per_epoch = 0;
  /// Global epochs already completed (from Checkpointer::Resume); the
  /// driver skips all steps below start_epoch·steps_per_epoch without
  /// consuming any RNG.
  uint64_t start_epoch = 0;
  /// Fired before each epoch's steps with the global epoch index (e.g. to
  /// reshuffle the visit order). Runs on the calling thread.
  std::function<void(uint64_t)> epoch_start;
  /// Fired after each epoch's steps, workers quiesced.
  std::function<void(const EpochEnd&)> epoch_end;
  /// When set, consulted after every epoch (after epoch_end); writes
  /// checkpoints per its policy and can stop the run (simulated
  /// preemption). Not owned.
  Checkpointer* checkpointer = nullptr;
  /// Optional windowed-loss callback.
  ProgressCallback progress;
  /// Callback cadence in steps.
  uint64_t report_every = 1'000'000;
  /// When non-empty and the obs registry is enabled, each Run records under
  /// this prefix: counter ".steps" (executed steps), series ".run_loss"
  /// (one entry per executed epoch), series ".loss" (windowed, via the
  /// ProgressReporter), gauge ".examples_per_sec", and histogram
  /// ".worker_steps" (one observation per worker). Recording happens off
  /// the step hot path and never draws from any Rng.
  std::string metrics_prefix;
  /// Shard affinity for multi-worker runs; see ShardPlan.
  ShardPlan shard_plan;
};

/// One step's execution context, handed to the body.
struct SgdStep {
  size_t worker;   ///< worker index in [0, num_workers)
  uint64_t step;   ///< global step index
  double lr;       ///< learning rate at this step
  util::Rng& rng;  ///< this worker's RNG stream
  /// Storage shard this step should sample its source from; kNoShard on
  /// the serial path and on runs without a ShardPlan.
  size_t shard = kNoShard;
};

/// Unified SGD execution engine; see the file comment.
class SgdDriver {
 public:
  explicit SgdDriver(const SgdOptions& options)
      : options_(options), workers_(ResolveWorkerCount(options)) {}

  /// Resolved worker count (scratch buffers should be sized by this).
  size_t num_workers() const { return workers_; }

  /// Runs the step budget; returns the sum of the executed bodies' losses.
  template <typename Body>
  double Run(util::Rng& rng, Body&& body) {
    const uint64_t steps = options_.steps;
    const uint64_t begin = options_.step_offset;
    const uint64_t end = begin + steps;
    const uint64_t total =
        options_.total_steps != 0 ? options_.total_steps : end;
    const uint64_t spe =
        options_.steps_per_epoch != 0 ? options_.steps_per_epoch : steps;
    // Resume: everything below the restored epoch boundary already ran in
    // a previous process; skip it without touching the RNG (its stream was
    // restored from the checkpoint).
    uint64_t cursor = begin;
    if (options_.start_epoch > 0 && spe > 0) {
      cursor = std::min(end, std::max(begin, options_.start_epoch * spe));
    }
    ProgressReporter reporter(options_.progress, options_.report_every,
                              total, cursor, options_.metrics_prefix);
    std::optional<ThreadPool> pool;
    if (workers_ > 1) pool.emplace(workers_);

    double loss_sum = 0.0;
    uint64_t executed = 0;
    std::vector<uint64_t> worker_steps(workers_, 0);
    while (cursor < end) {
      const uint64_t epoch = spe > 0 ? cursor / spe : 0;
      const uint64_t chunk_end = spe > 0
                                     ? std::min<uint64_t>(end, (epoch + 1) * spe)
                                     : end;
      if (options_.epoch_start) options_.epoch_start(epoch);
      // One timeline span per epoch chunk (named runs only). The span is
      // pure steady-clock bookkeeping recorded at the quiesced boundary —
      // it never touches any Rng, so traced runs stay bit-identical.
      std::optional<obs::TraceSpan> epoch_span;
      if (!options_.metrics_prefix.empty() && obs::TraceEnabled()) {
        epoch_span.emplace(options_.metrics_prefix + ".epoch " +
                           std::to_string(epoch));
      }
      double epoch_loss = 0.0;
      if (workers_ == 1) {
        for (uint64_t step = cursor; step < chunk_end; ++step) {
          const SgdStep ctx{0, step, options_.lr.At(step, total), rng};
          const double loss = body(SerialAccess{}, ctx);
          epoch_loss += loss;
          reporter.Record(1, loss);
        }
        worker_steps[0] += chunk_end - cursor;
      } else if (options_.shard_plan.num_shards > 0) {
        epoch_loss = RunChunkShardedHogwild(cursor, chunk_end, epoch, total,
                                            reporter, *pool, worker_steps,
                                            body);
      } else {
        epoch_loss = RunChunkHogwild(cursor, chunk_end, epoch, total,
                                     reporter, *pool, worker_steps, body);
      }
      loss_sum += epoch_loss;
      executed += chunk_end - cursor;
      cursor = chunk_end;

      const EpochEnd boundary{epoch, cursor, epoch_loss, cursor >= end};
      if (options_.epoch_end) options_.epoch_end(boundary);
      if (!options_.metrics_prefix.empty() && obs::Enabled()) {
        obs::Registry::Default().Append(
            options_.metrics_prefix + ".run_loss", epoch_loss);
      }
      if (options_.checkpointer &&
          options_.checkpointer->AtEpochBoundary(boundary, rng)) {
        break;
      }
    }
    RecordRunMetrics(reporter, executed, worker_steps);
    return loss_sum;
  }

 private:
  /// One epoch chunk on the Hogwild path. Worker w runs chunk-relative
  /// steps w, w+N, w+2N, …; each epoch's worker streams are seeded from
  /// (shard_seed, epoch) so resumed epochs sample identically. A run whose
  /// whole budget is one epoch keeps the historical seeding (shard_seed
  /// directly).
  template <typename Body>
  double RunChunkHogwild(uint64_t chunk_begin, uint64_t chunk_end,
                         uint64_t epoch, uint64_t total,
                         ProgressReporter& reporter, ThreadPool& pool,
                         std::vector<uint64_t>& worker_steps, Body&& body) {
    const bool single_chunk = options_.steps_per_epoch == 0 ||
                              options_.steps_per_epoch >= options_.steps;
    const ShardedRng shards(single_chunk
                                ? options_.shard_seed
                                : PerItemSeed(options_.shard_seed, epoch));
    const uint64_t chunk_steps = chunk_end - chunk_begin;
    std::vector<double> worker_loss(workers_, 0.0);
    const bool trace_workers =
        !options_.metrics_prefix.empty() && obs::TraceEnabled();
    pool.ParallelFor(workers_, [&](size_t w) {
      // Per-worker span: lays the chunk out on the worker's own timeline
      // row, making stragglers visible. Steady-clock only, no Rng.
      std::optional<obs::TraceSpan> worker_span;
      if (trace_workers) {
        worker_span.emplace(options_.metrics_prefix + ".worker " +
                            std::to_string(w));
      }
      util::Rng worker_rng = shards.MakeShard(w);
      double loss_sum = 0.0;
      double window_loss = 0.0;
      uint64_t window_steps = 0;
      uint64_t steps_run = 0;
      for (uint64_t i = w; i < chunk_steps; i += workers_) {
        const uint64_t step = chunk_begin + i;
        const SgdStep ctx{w, step, options_.lr.At(step, total), worker_rng};
        const double loss = body(HogwildAccess{}, ctx);
        loss_sum += loss;
        window_loss += loss;
        ++steps_run;
        if (++window_steps >= kWorkerFlushSteps) {
          reporter.Record(window_steps, window_loss);
          window_steps = 0;
          window_loss = 0.0;
        }
      }
      if (window_steps > 0) reporter.Record(window_steps, window_loss);
      worker_loss[w] = loss_sum;
      worker_steps[w] += steps_run;
    });
    // Fixed summation order keeps the reduction independent of thread
    // scheduling (the updates themselves still race, by design).
    double loss_sum = 0.0;
    for (double v : worker_loss) loss_sum += v;
    return loss_sum;
  }

  /// One epoch chunk on the shard-affine Hogwild path. The chunk's step
  /// budget is apportioned across shards by ShardPlan weight (largest
  /// remainder, deterministic tie-break on shard index) and shard s runs
  /// on worker s % N as one contiguous span of steps, so each worker's
  /// resident pages stay hot. Worker RNG seeding matches the unsharded
  /// path; the learning-rate index interleaves each worker's local steps
  /// across the chunk so every worker still sweeps the decay.
  template <typename Body>
  double RunChunkShardedHogwild(uint64_t chunk_begin, uint64_t chunk_end,
                                uint64_t epoch, uint64_t total,
                                ProgressReporter& reporter, ThreadPool& pool,
                                std::vector<uint64_t>& worker_steps,
                                Body&& body) {
    const bool single_chunk = options_.steps_per_epoch == 0 ||
                              options_.steps_per_epoch >= options_.steps;
    const ShardedRng shards(single_chunk
                                ? options_.shard_seed
                                : PerItemSeed(options_.shard_seed, epoch));
    const uint64_t chunk_steps = chunk_end - chunk_begin;
    const std::vector<uint64_t> quota = ApportionSteps(chunk_steps);
    std::vector<double> worker_loss(workers_, 0.0);
    const bool trace_workers =
        !options_.metrics_prefix.empty() && obs::TraceEnabled();
    pool.ParallelFor(workers_, [&](size_t w) {
      std::optional<obs::TraceSpan> worker_span;
      if (trace_workers) {
        worker_span.emplace(options_.metrics_prefix + ".worker " +
                            std::to_string(w));
      }
      util::Rng worker_rng = shards.MakeShard(w);
      double loss_sum = 0.0;
      double window_loss = 0.0;
      uint64_t window_steps = 0;
      uint64_t steps_run = 0;
      for (size_t s = w; s < quota.size(); s += workers_) {
        for (uint64_t j = 0; j < quota[s]; ++j) {
          const uint64_t step =
              chunk_begin + (steps_run * workers_ + w) % chunk_steps;
          const SgdStep ctx{w, step, options_.lr.At(step, total), worker_rng,
                            s};
          const double loss = body(HogwildAccess{}, ctx);
          loss_sum += loss;
          window_loss += loss;
          ++steps_run;
          if (++window_steps >= kWorkerFlushSteps) {
            reporter.Record(window_steps, window_loss);
            window_steps = 0;
            window_loss = 0.0;
          }
        }
      }
      if (window_steps > 0) reporter.Record(window_steps, window_loss);
      worker_loss[w] = loss_sum;
      worker_steps[w] += steps_run;
    });
    double loss_sum = 0.0;
    for (double v : worker_loss) loss_sum += v;
    return loss_sum;
  }

  /// Largest-remainder apportionment of `chunk_steps` across the plan's
  /// shards by weight. Deterministic: remainder ties break on shard index.
  std::vector<uint64_t> ApportionSteps(uint64_t chunk_steps) const {
    const size_t n = options_.shard_plan.num_shards;
    std::vector<double> weights = options_.shard_plan.shard_weights;
    double weight_sum = 0.0;
    for (double v : weights) weight_sum += v;
    if (weights.size() != n || weight_sum <= 0.0) {
      weights.assign(n, 1.0);
      weight_sum = static_cast<double>(n);
    }
    std::vector<uint64_t> quota(n, 0);
    std::vector<std::pair<double, size_t>> remainders(n);
    uint64_t assigned = 0;
    for (size_t s = 0; s < n; ++s) {
      const double exact =
          static_cast<double>(chunk_steps) * weights[s] / weight_sum;
      quota[s] = static_cast<uint64_t>(exact);
      assigned += quota[s];
      remainders[s] = {exact - static_cast<double>(quota[s]), s};
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (size_t k = 0; assigned < chunk_steps; ++k, ++assigned) {
      ++quota[remainders[k % n].second];
    }
    return quota;
  }

  /// Post-run telemetry (see SgdOptions::metrics_prefix). Cold path: runs
  /// once per Run, after every worker has joined.
  void RecordRunMetrics(const ProgressReporter& reporter, uint64_t executed,
                        const std::vector<uint64_t>& worker_steps) {
    if (options_.metrics_prefix.empty() || !obs::Enabled()) return;
    const std::string& prefix = options_.metrics_prefix;
    obs::Registry& registry = obs::Registry::Default();
    registry.GetCounter(prefix + ".steps")->Add(executed);
    registry.GetGauge(prefix + ".examples_per_sec")
        ->Set(reporter.StepsPerSec());
    obs::Histogram* steps_hist =
        registry.GetHistogram(prefix + ".worker_steps");
    for (size_t w = 0; w < workers_; ++w) {
      steps_hist->Observe(static_cast<double>(worker_steps[w]));
    }
  }

  // Workers flush loss windows to the shared reporter in batches to keep
  // the mutex off the hot path.
  static constexpr uint64_t kWorkerFlushSteps = 1024;

  static size_t ResolveWorkerCount(const SgdOptions& options) {
    size_t workers = options.num_threads == 0
                         ? ThreadPool::HardwareConcurrency()
                         : options.num_threads;
    // Never spawn more workers than steps; degenerate budgets run inline.
    if (options.steps < workers) {
      workers = std::max<uint64_t>(1, options.steps);
    }
    return workers;
  }

  SgdOptions options_;
  size_t workers_;
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_SGD_DRIVER_H_
