// SgdDriver: the unified parallel SGD engine behind every trainer.
//
// A trainer hands the driver a step budget, a learning-rate schedule, and a
// step body; the driver owns execution:
//   * one worker  — the body runs inline on the trainer's own Rng with
//     SerialAccess, which reproduces the historical single-threaded
//     trainers bit-for-bit (same RNG stream, same float arithmetic);
//   * N workers   — the step budget is partitioned across the pool in
//     strides (worker w runs global steps w, w+N, w+2N, …, so each worker
//     sweeps the full learning-rate decay), every worker draws from its own
//     ShardedRng stream, and the body runs with HogwildAccess: lock-free
//     relaxed-atomic updates on the shared parameters, the Hogwild model.
//
// The body is a generic callable
//     double body(AccessPolicy, const SgdStep&)
// returning the step's loss contribution (0.0 when untracked); Run returns
// the sum of all step losses. Per-worker scratch buffers should be sized by
// num_workers() and indexed by SgdStep::worker.

#ifndef DEEPDIRECT_TRAIN_SGD_DRIVER_H_
#define DEEPDIRECT_TRAIN_SGD_DRIVER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "train/hogwild.h"
#include "train/lr_schedule.h"
#include "train/progress_reporter.h"
#include "train/sharded_rng.h"
#include "train/thread_pool.h"
#include "util/random.h"

namespace deepdirect::train {

/// Execution parameters of one driver run.
struct SgdOptions {
  /// Steps this run executes.
  uint64_t steps = 0;
  /// Worker count: 1 = deterministic serial path, 0 = all hardware threads.
  size_t num_threads = 1;
  /// Learning-rate schedule over the global budget.
  LrSchedule lr;
  /// Global index of this run's first step (non-zero when a trainer drives
  /// several epoch-sized runs against one decay budget).
  uint64_t step_offset = 0;
  /// Global budget for LR decay and progress totals; 0 = step_offset+steps.
  uint64_t total_steps = 0;
  /// Base seed for per-worker RNG streams (multi-worker runs only; the
  /// serial path draws from the trainer's own Rng instead).
  uint64_t shard_seed = 0;
  /// Optional windowed-loss callback.
  ProgressCallback progress;
  /// Callback cadence in steps.
  uint64_t report_every = 1'000'000;
  /// When non-empty and the obs registry is enabled, each Run records under
  /// this prefix: counter ".steps", series ".run_loss" (one entry per Run —
  /// per epoch for epoch-driven trainers), series ".loss" (windowed, via
  /// the ProgressReporter), gauge ".examples_per_sec", and histogram
  /// ".worker_steps" (one observation per worker). Recording happens off
  /// the step hot path and never draws from any Rng.
  std::string metrics_prefix;
};

/// One step's execution context, handed to the body.
struct SgdStep {
  size_t worker;   ///< worker index in [0, num_workers)
  uint64_t step;   ///< global step index
  double lr;       ///< learning rate at this step
  util::Rng& rng;  ///< this worker's RNG stream
};

/// Unified SGD execution engine; see the file comment.
class SgdDriver {
 public:
  explicit SgdDriver(const SgdOptions& options)
      : options_(options), workers_(ResolveWorkerCount(options)) {}

  /// Resolved worker count (scratch buffers should be sized by this).
  size_t num_workers() const { return workers_; }

  /// Runs the step budget; returns the sum of the body's loss values.
  template <typename Body>
  double Run(util::Rng& rng, Body&& body) {
    const uint64_t steps = options_.steps;
    const uint64_t total = options_.total_steps != 0
                               ? options_.total_steps
                               : options_.step_offset + steps;
    ProgressReporter reporter(options_.progress, options_.report_every,
                              total, options_.step_offset,
                              options_.metrics_prefix);
    if (workers_ == 1) {
      double loss_sum = 0.0;
      for (uint64_t i = 0; i < steps; ++i) {
        const uint64_t step = options_.step_offset + i;
        const SgdStep ctx{0, step, options_.lr.At(step, total), rng};
        const double loss = body(SerialAccess{}, ctx);
        loss_sum += loss;
        reporter.Record(1, loss);
      }
      RecordRunMetrics(reporter, loss_sum);
      return loss_sum;
    }

    const ShardedRng shards(options_.shard_seed);
    std::vector<double> worker_loss(workers_, 0.0);
    ThreadPool pool(workers_);
    pool.ParallelFor(workers_, [&](size_t w) {
      util::Rng worker_rng = shards.MakeShard(w);
      double loss_sum = 0.0;
      double window_loss = 0.0;
      uint64_t window_steps = 0;
      for (uint64_t i = w; i < steps; i += workers_) {
        const uint64_t step = options_.step_offset + i;
        const SgdStep ctx{w, step, options_.lr.At(step, total), worker_rng};
        const double loss = body(HogwildAccess{}, ctx);
        loss_sum += loss;
        window_loss += loss;
        if (++window_steps >= kWorkerFlushSteps) {
          reporter.Record(window_steps, window_loss);
          window_steps = 0;
          window_loss = 0.0;
        }
      }
      if (window_steps > 0) reporter.Record(window_steps, window_loss);
      worker_loss[w] = loss_sum;
    });
    // Fixed summation order keeps the reduction independent of thread
    // scheduling (the updates themselves still race, by design).
    double loss_sum = 0.0;
    for (double v : worker_loss) loss_sum += v;
    RecordRunMetrics(reporter, loss_sum);
    return loss_sum;
  }

 private:
  /// Post-run telemetry (see SgdOptions::metrics_prefix). Cold path: runs
  /// once per Run, after every worker has joined.
  void RecordRunMetrics(const ProgressReporter& reporter, double loss_sum) {
    if (options_.metrics_prefix.empty() || !obs::Enabled()) return;
    const std::string& prefix = options_.metrics_prefix;
    obs::Registry& registry = obs::Registry::Default();
    const uint64_t steps = options_.steps;
    registry.GetCounter(prefix + ".steps")->Add(steps);
    registry.Append(prefix + ".run_loss", loss_sum);
    registry.GetGauge(prefix + ".examples_per_sec")
        ->Set(reporter.StepsPerSec());
    obs::Histogram* worker_steps =
        registry.GetHistogram(prefix + ".worker_steps");
    for (size_t w = 0; w < workers_; ++w) {
      // Worker w runs global steps w, w+N, w+2N, … — its share of the
      // strided budget.
      const uint64_t share =
          steps > w ? (steps - w + workers_ - 1) / workers_ : 0;
      worker_steps->Observe(static_cast<double>(share));
    }
  }

  // Workers flush loss windows to the shared reporter in batches to keep
  // the mutex off the hot path.
  static constexpr uint64_t kWorkerFlushSteps = 1024;

  static size_t ResolveWorkerCount(const SgdOptions& options) {
    size_t workers = options.num_threads == 0
                         ? ThreadPool::HardwareConcurrency()
                         : options.num_threads;
    // Never spawn more workers than steps; degenerate budgets run inline.
    if (options.steps < workers) {
      workers = std::max<uint64_t>(1, options.steps);
    }
    return workers;
  }

  SgdOptions options_;
  size_t workers_;
};

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_SGD_DRIVER_H_
