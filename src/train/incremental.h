// Streaming tie-batch ingestion + warm-start E-step state.
//
// Real social graphs accrete ties continuously; retraining from scratch on
// every arrival throws away the checkpointed E-step state PR 5 made
// durable. This module is the train-layer half of incremental updates:
//
//   * TieBatch / ParseTieBatch / LoadTieBatch — a delta file of new ties in
//     the standard edge-list grammar (`u v d|b|u`, optional `# nodes N`
//     header, CRLF-tolerant). Parsing is strict and line-anchored: a
//     malformed line, unknown type, self-loop, trailing token, or a tie
//     duplicated *within* the batch yields InvalidArgument naming the line
//     (duplicates name both lines); an unreadable file yields IOError.
//     Duplicates against the *existing* network are rejected by the core
//     splice (core::DeepDirectModel::ApplyTieBatch), which owns the graph.
//
//   * EStepState / LoadEStepState / SaveEStepState — the warm-start
//     payload: the embedding matrix M, the connection matrix N (which the
//     trained model does not retain), and the E-step classifier (w', b'),
//     read from the newest valid "deepdirect.estep" checkpoint in a
//     directory and written back as a chained checkpoint after each batch.
//     Requires the producing run to have written its final state
//     (CheckpointPolicy::write_final); an ordinary resume snapshot is one
//     epoch short of the model that was actually served.
//
// Layering: this file lives in deepdirect_train and must not link the
// graph library (deepdirect_graph links train). graph/types.h is
// header-only and provides TieType/NodeId; everything needing the built
// network lives in core/incremental.h.

#ifndef DEEPDIRECT_TRAIN_INCREMENTAL_H_
#define DEEPDIRECT_TRAIN_INCREMENTAL_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace deepdirect::train {

/// One new tie from a delta file, with the 1-based line it came from so
/// every later rejection (self-loop at splice time, duplicate of an
/// existing edge) can anchor its error to the input.
struct TieDelta {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  graph::TieType type = graph::TieType::kUndirected;
  uint32_t line = 0;
};

/// A parsed batch of new ties.
struct TieBatch {
  std::vector<TieDelta> ties;
  /// Max endpoint id seen (0 when empty); new ids beyond the base
  /// network's node count extend the merged network.
  graph::NodeId max_node_id = 0;
  /// Node count from an optional `# nodes N` header (0 = none declared).
  size_t declared_nodes = 0;
};

/// Parses a delta stream; `origin` labels error messages (usually the
/// path). Line-anchored InvalidArgument on malformed lines, unknown types,
/// self-loops, and in-batch unordered-pair duplicates.
util::Result<TieBatch> ParseTieBatch(std::istream& in,
                                     const std::string& origin);

/// Reads and parses a delta file; IOError when unreadable.
util::Result<TieBatch> LoadTieBatch(const std::string& path);

/// The E-step training state a tie-batch update warm-starts from: flat
/// row-major M and N (num_arcs × dimensions each) plus the joint
/// classifier (w', b'). `tie_hash` binds the state to the closure arcs of
/// the network it was trained on (core::HashTieIndex; 0 = unknown, for
/// checkpoints written before the hash section existed). `epochs_done`
/// carries the checkpoint's counter so chained saves stay monotonic.
struct EStepState {
  size_t dimensions = 0;
  size_t num_arcs = 0;
  std::vector<float> m;
  std::vector<float> n;
  std::vector<double> w_prime;
  double b_prime = 0.0;
  uint64_t tie_hash = 0;
  uint64_t epochs_done = 0;
};

/// Scans `dir` for the newest valid checkpoint tagged `trainer` and
/// extracts the warm-start state. Corrupt or malformed candidates are
/// skipped with a warning on stderr, like Checkpointer::Resume; NotFound
/// when no usable checkpoint exists.
util::Result<EStepState> LoadEStepState(
    const std::string& dir, const std::string& trainer = "deepdirect.estep");

/// Writes `state` as a checkpoint container named by its `epochs_done`
/// counter (same `<trainer>-%08llu.ckpt` naming as the Checkpointer), so a
/// later LoadEStepState — or the next chained update — finds it first.
/// The container is not resumable by Train (its run shape belongs to no
/// full-retrain budget); Train's resume scan warns and skips it.
util::Status SaveEStepState(const std::string& dir,
                            const std::string& trainer,
                            const EStepState& state);

}  // namespace deepdirect::train

#endif  // DEEPDIRECT_TRAIN_INCREMENTAL_H_
